//! The determinism rule family.
//!
//! The theorem harness asserts parallel == serial *dynamically*; these
//! rules keep nondeterminism out *statically*:
//!
//! - `hash-collections` — no `HashMap`/`HashSet` in the deterministic
//!   crates (`model`, `core`, `sim`, `workloads`): their iteration order is seeded
//!   per-process, so any iteration (and therefore any construction —
//!   the iteration is one refactor away) can leak schedule-dependent
//!   order into checker verdicts and traces. Use `BTreeMap`/`BTreeSet`.
//! - `wall-clock` — no `SystemTime`, `Instant::now` or `thread_rng`
//!   anywhere in first-party code: virtual time and seeded RNGs only.
//!   Exception: `crates/net`, the real-socket runtime, whose whole job
//!   is to drive the same actors against ambient time — its recordings
//!   are re-verified in virtual time by the replay oracle.
//! - `ad-hoc-threads` — no `thread::spawn` or `rayon` outside
//!   `crates/par`, whose `parallel_map` is the one audited fan-out
//!   primitive (bit-identical to the serial loop by construction).
//!   Same `crates/net` exception: its per-connection reader threads
//!   feed a recorded, replayable delivery order.
//! - `net-boundary` — no socket types (`TcpStream`, `TcpListener`,
//!   `UdpSocket`) outside `crates/net`: the simulator and everything
//!   above it must stay runnable with no network at all, and a socket
//!   in a deterministic crate is wall-clock nondeterminism by another
//!   name.
//! - `sim-in-net-hot-path` — inside `crates/net`, the simulator's
//!   oracle types (`World`, `SimConfig`, `LatencyModel`, `Trace`) may
//!   appear only in `replay.rs`. The event loop must drive actors
//!   through the public `Ctx::standalone` step API alone; if the hot
//!   path could consult the sim, a replay match would prove nothing.
//! - `unsafe-block` — no `unsafe` outside `crates/sim/src/smallvec.rs`,
//!   the single file allowed to earn it back with Miri coverage.

use crate::lexer::{Lexed, TokKind};
use crate::report::Finding;

/// Rule name: hash collections in deterministic crates.
pub const RULE_HASH: &str = "hash-collections";
/// Rule name: wall-clock time and ambient RNG.
pub const RULE_CLOCK: &str = "wall-clock";
/// Rule name: thread spawning outside `cbf-par`.
pub const RULE_THREAD: &str = "ad-hoc-threads";
/// Rule name: `unsafe` outside the vetted smallvec file.
pub const RULE_UNSAFE: &str = "unsafe-block";
/// Rule name: scheduler-core files missing their `#![deny(unsafe_code)]`.
pub const RULE_GUARD: &str = "missing-unsafe-guard";
/// Rule name: socket types outside the net runtime crate.
pub const RULE_NET: &str = "net-boundary";
/// Rule name: simulator oracle types in cbf-net's hot path.
pub const RULE_SIM_IN_NET: &str = "sim-in-net-hot-path";

/// The crates whose behaviour must be a pure function of the seed.
/// `workloads` joined the list with the million-client swarm: the op
/// stream it generates is folded into pinned trace digests, so a
/// schedule-dependent key order there corrupts every load exhibit.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/model/",
    "crates/core/",
    "crates/sim/",
    "crates/workloads/",
];

/// The one file allowed to contain `unsafe`.
const UNSAFE_ALLOWED_FILE: &str = "crates/sim/src/smallvec.rs";

/// The one crate allowed to create threads.
const THREAD_ALLOWED_CRATE: &str = "crates/par/";

/// The real-socket runtime: the one crate allowed to open sockets,
/// read the wall clock and spawn reader threads. Its nondeterminism is
/// the experiment — every run records its delivery order and is
/// re-verified bit-for-bit by the deterministic replay oracle, so the
/// carve-out is earned dynamically rather than assumed.
const NET_RUNTIME_CRATE: &str = "crates/net/";

/// The one cbf-net module allowed to name the simulator's oracle
/// types: it rebuilds a `World` from a recording to diff against the
/// real run. Everywhere else in the crate the actors are driven
/// through `Ctx::standalone` only.
const NET_REPLAY_FILE: &str = "crates/net/src/replay.rs";

/// Socket types that must not appear outside [`NET_RUNTIME_CRATE`].
const SOCKET_TYPES: &[&str] = &["TcpStream", "TcpListener", "UdpSocket"];

/// Simulator oracle types confined, within cbf-net, to
/// [`NET_REPLAY_FILE`].
const SIM_ORACLE_TYPES: &[&str] = &["World", "SimConfig", "LatencyModel", "Trace"];

/// Modules that promise safety in their docs and must carry their own
/// `#![deny(unsafe_code)]` even though the crate root is already the
/// lexer's concern. Two families: the scheduler core (the slab flight
/// table and the calendar queue traded std collections for index
/// arithmetic, exactly the terrain where `unsafe` creeps in) and the
/// streaming pipeline (the sink, the sharded checker and the pipeline
/// harness move trace segments and transactions across a thread
/// boundary, where `unsafe` shortcuts would be just as tempting), plus
/// the bounded-memory tier (the checker's frontier GC compacts arenas
/// and rebases value ledgers with raw index arithmetic, and the soak
/// harness is the exhibit that certifies the whole stack's plateau),
/// plus the workload generators (the alias table, the swarm's time
/// wheel and the batch emitter are index-arithmetic hot paths feeding
/// the million-client tiers — the same temptation profile as the slab),
/// plus the net runtime's codec and event loop (length-prefixed frame
/// parsing and inbox/timer bookkeeping are exactly where a "fast"
/// unchecked byte-slice read would creep in).
const GUARDED_FILES: &[&str] = &[
    "crates/sim/src/slab.rs",
    "crates/sim/src/calendar.rs",
    "crates/sim/src/sink.rs",
    "crates/model/src/streaming.rs",
    "crates/model/src/incremental.rs",
    "crates/bench/src/pipeline.rs",
    "crates/bench/src/soak.rs",
    "crates/workloads/src/alias.rs",
    "crates/workloads/src/zipf.rs",
    "crates/workloads/src/gen.rs",
    "crates/workloads/src/swarm.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/node.rs",
];

/// Run every determinism rule over one lexed file. `path` is
/// workspace-relative with `/` separators.
pub fn check(path: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let in_deterministic_crate = DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p));
    let in_net_runtime = path.starts_with(NET_RUNTIME_CRATE);
    let toks = &lx.tokens;

    if GUARDED_FILES.contains(&path) {
        let has_guard = toks.iter().enumerate().any(|(i, t)| {
            t.is_ident("deny")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("unsafe_code"))
        });
        if !has_guard {
            out.push(
                Finding::error(
                    RULE_GUARD,
                    path,
                    1,
                    1,
                    "guarded module without `#![deny(unsafe_code)]`: the \
                     scheduler core and the streaming pipeline must stay \
                     provably safe — see GUARDED_FILES in snowlint"
                        .to_string(),
                )
                .with_help("restore the inner attribute at the top of the module".to_string()),
            );
        }
    }

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |j: usize, s: &str| toks.get(j).is_some_and(|t| t.is_punct(s));
        let ident_at = |j: usize, s: &str| toks.get(j).is_some_and(|t| t.is_ident(s));

        if in_deterministic_crate && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(
                Finding::error(
                    RULE_HASH,
                    path,
                    t.line,
                    t.col,
                    format!(
                        "`{}` in a deterministic crate: iteration order is \
                         seeded per-process and can leak into results",
                        t.text
                    ),
                )
                .with_help(format!(
                    "use `BTree{}`, or annotate the line with \
                     `// snowlint: allow({RULE_HASH}): <why this cannot leak>`",
                    &t.text[4..]
                )),
            );
        }

        if !in_net_runtime
            && (t.text == "SystemTime"
                || t.text == "thread_rng"
                || (t.text == "Instant" && next_is(i + 1, "::") && ident_at(i + 2, "now")))
        {
            out.push(
                Finding::error(
                    RULE_CLOCK,
                    path,
                    t.line,
                    t.col,
                    format!(
                        "`{}` reads ambient state: deterministic paths must use \
                         virtual time (`cbf_sim::Time`) and seeded RNGs",
                        if t.text == "Instant" {
                            "Instant::now"
                        } else {
                            &t.text
                        }
                    ),
                )
                .with_help(
                    "thread the simulator clock or a seeded generator through \
                     instead; real-time measurement belongs in allowlisted \
                     bench code only"
                        .to_string(),
                ),
            );
        }

        if !path.starts_with(THREAD_ALLOWED_CRATE)
            && !in_net_runtime
            && ((t.text == "thread" && next_is(i + 1, "::") && ident_at(i + 2, "spawn"))
                || t.text == "rayon")
        {
            out.push(
                Finding::error(
                    RULE_THREAD,
                    path,
                    t.line,
                    t.col,
                    "ad-hoc parallelism outside `crates/par`: unaudited fan-out \
                     cannot guarantee bit-identical serial/parallel results"
                        .to_string(),
                )
                .with_help(
                    "use `cbf_par::parallel_map`, which joins results in input \
                     order and honours SNOWBOUND_THREADS=1"
                        .to_string(),
                ),
            );
        }

        if !in_net_runtime && SOCKET_TYPES.iter().any(|s| t.text == *s) {
            out.push(
                Finding::error(
                    RULE_NET,
                    path,
                    t.line,
                    t.col,
                    format!(
                        "`{}` outside crates/net: sockets are wall-clock \
                         nondeterminism by another name, and everything above \
                         the runtime must run with no network at all",
                        t.text
                    ),
                )
                .with_help(
                    "real I/O belongs in the cbf-net runtime; drive the actors \
                     through `Ctx::standalone` there and keep this crate on \
                     virtual time"
                        .to_string(),
                ),
            );
        }

        if in_net_runtime
            && path != NET_REPLAY_FILE
            && SIM_ORACLE_TYPES.iter().any(|s| t.text == *s)
        {
            out.push(
                Finding::error(
                    RULE_SIM_IN_NET,
                    path,
                    t.line,
                    t.col,
                    format!(
                        "`{}` in cbf-net's hot path: the runtime may touch the \
                         simulator only through the replay oracle \
                         (crates/net/src/replay.rs)",
                        t.text
                    ),
                )
                .with_help(
                    "if the event loop could consult the sim, a replay match \
                     would prove nothing — move oracle work into replay.rs or \
                     use the public `Ctx::standalone` step API"
                        .to_string(),
                ),
            );
        }

        if t.text == "unsafe" && path != UNSAFE_ALLOWED_FILE {
            out.push(
                Finding::error(
                    RULE_UNSAFE,
                    path,
                    t.line,
                    t.col,
                    "new `unsafe` outside crates/sim/src/smallvec.rs".to_string(),
                )
                .with_help(
                    "every crate but cbf-sim carries #![deny(unsafe_code)]; \
                     if unsafe is genuinely needed, move it behind a safe \
                     abstraction in the sim crate and cover it with Miri"
                        .to_string(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check(path, &lex(src), &mut out);
        out
    }

    #[test]
    fn hashmap_flagged_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run("crates/model/src/x.rs", src).len(), 1);
        assert_eq!(run("crates/sim/src/world.rs", src).len(), 1);
        assert!(run("crates/protocols/src/cops.rs", src).is_empty());
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "// HashMap HashSet unsafe thread_rng\nlet s = \"HashMap unsafe\";";
        assert!(run("crates/model/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_variants() {
        assert_eq!(
            run("crates/core/src/x.rs", "let t = Instant::now();").len(),
            1
        );
        assert_eq!(run("src/driver.rs", "SystemTime::now()").len(), 1);
        // lib.rs rather than gen.rs: the generator hot paths are
        // guarded files now, which would add a guard finding here.
        assert_eq!(
            run("crates/workloads/src/lib.rs", "rand::thread_rng()").len(),
            1
        );
        // A stored Instant value (no ::now) is not flagged.
        assert!(run("crates/core/src/x.rs", "fn f(t: Instant) {}").is_empty());
        // The net runtime runs on the wall clock by design.
        assert!(run("crates/net/src/launch.rs", "let t = Instant::now();").is_empty());
        assert!(run("crates/net/src/lib.rs", "SystemTime::now()").is_empty());
    }

    #[test]
    fn threads_allowed_only_in_par() {
        let src = "std::thread::spawn(|| {});";
        assert_eq!(run("crates/sim/src/world.rs", src).len(), 1);
        assert!(run("crates/par/src/lib.rs", src).is_empty());
        // ... and in the net runtime, whose reader threads feed a
        // recorded, replay-verified delivery order.
        assert!(run("crates/net/src/launch.rs", src).is_empty());
        assert_eq!(
            run("crates/bench/src/lib.rs", "use rayon::prelude::*;").len(),
            1
        );
        // scoped spawns inside par's primitive shape are fine elsewhere
        // only when not thread::spawn.
        assert!(run("crates/bench/src/lib.rs", "scope.spawn(|| {});").is_empty());
    }

    #[test]
    fn sockets_allowed_only_in_net() {
        let src = "let s = TcpStream::connect(addr);";
        assert_eq!(run("crates/sim/src/world.rs", src)[0].rule, RULE_NET);
        assert_eq!(run("crates/bench/src/lib.rs", src).len(), 1);
        assert!(run("crates/net/src/launch.rs", src).is_empty());
        for ty in ["TcpListener", "UdpSocket"] {
            let src = format!("use std::net::{ty};");
            assert_eq!(run("crates/model/src/x.rs", &src).len(), 1, "{ty}");
        }
        // Mentions in comments and strings stay silent.
        assert!(run("crates/sim/src/world.rs", "// a TcpStream here").is_empty());
    }

    #[test]
    fn sim_oracle_types_confined_to_the_replay_module() {
        for ty in SIM_ORACLE_TYPES {
            let src = format!("let w: {ty} = todo!();");
            let out = run("crates/net/src/launch.rs", &src);
            assert_eq!(out.len(), 1, "{ty} in the hot path");
            assert_eq!(out[0].rule, RULE_SIM_IN_NET);
            // The replay oracle is the sanctioned user...
            assert!(run(NET_REPLAY_FILE, &src).is_empty(), "{ty} in replay");
            // ...and outside cbf-net the names are ordinary.
            assert!(run("crates/bench/src/lib.rs", &src).is_empty());
        }
    }

    #[test]
    fn guarded_modules_must_keep_their_guard() {
        let guarded = "#![deny(unsafe_code)]\nstruct FlightSlab;";
        let bare = "struct FlightSlab;";
        for path in GUARDED_FILES {
            assert!(run(path, guarded).is_empty(), "{path} with guard");
            let out = run(path, bare);
            assert_eq!(out.len(), 1, "{path} without guard");
            assert_eq!(out[0].rule, RULE_GUARD);
            assert_eq!((out[0].line, out[0].col), (1, 1));
        }
        // Other files carry the guard at crate level; no per-file demand.
        assert!(run("crates/sim/src/world.rs", bare).is_empty());
    }

    #[test]
    fn unsafe_allowed_only_in_smallvec() {
        let src = "unsafe { core::hint::unreachable_unchecked() }";
        assert_eq!(run("crates/model/src/x.rs", src).len(), 1);
        assert!(run("crates/sim/src/smallvec.rs", src).is_empty());
    }
}
