//! The per-protocol handler graph snowflow extracts.
//!
//! Nodes are handler *arms* — one per `Msg::Variant` pattern a
//! `client_step`/`server_step` dispatch match consumes. Edges are
//! message *emissions* — every `ctx.send(dest, Msg::Variant { .. })`
//! or `ctx.set_timer(delay, Msg::Variant { .. })` reachable from the
//! arm's body through the module's own call graph. The flow pass
//! ([`crate::flow`]) derives the SNOW tuple from walks over this graph;
//! this module only holds the data model and its JSON/DOT renderings.

use crate::report::json_str;
use std::fmt::Write as _;

/// Which side of the wire a handler arm runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Client-side handler (`client_step`).
    Client,
    /// Server-side handler (`server_step`).
    Server,
}

impl Role {
    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Role::Client => "client",
            Role::Server => "server",
        }
    }
}

/// Destination class of one emission, from the first `ctx.send`
/// argument's shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DestClass {
    /// `env.from` — the reply goes to whoever sent the message being
    /// handled, inside the same activation. Never deferrable.
    Sender,
    /// A client process id read back out of node state (`r.client`,
    /// `tx.client`, …) — the response addressee was stashed, so the
    /// response is decoupled from its request's arrival: deferrable.
    StoredClient,
    /// A server (`server`, `coordinator`, `part`, `topo.primary(..)`,
    /// a sequencer constant, …).
    Server,
    /// `ctx.set_timer` — delivered to the emitting node itself later.
    SelfTimer,
    /// Unrecognised destination expression; needs a
    /// `// snowflow: dest(..)` hint.
    Unknown,
}

impl DestClass {
    /// Lowercase display name (matches the `dest(..)` hint vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            DestClass::Sender => "sender",
            DestClass::StoredClient => "stored-client",
            DestClass::Server => "server",
            DestClass::SelfTimer => "self-timer",
            DestClass::Unknown => "unknown",
        }
    }
}

/// One message emission reachable from a handler arm.
#[derive(Clone, Debug)]
pub struct Emission {
    /// The `Msg` variant constructed at the send site.
    pub variant: String,
    /// Destination class.
    pub dest: DestClass,
    /// 1-based line of the `send`/`set_timer` call.
    pub line: u32,
    /// Call chain from the arm to the send site (empty = direct).
    pub via: Vec<String>,
}

/// One handler arm — a node of the graph.
#[derive(Clone, Debug)]
pub struct Arm {
    /// Which step fn the arm lives in.
    pub role: Role,
    /// The `Msg` variants the pattern consumes (`|` patterns list all).
    pub variants: Vec<String>,
    /// 1-based line of the pattern.
    pub line: u32,
    /// Emissions reachable from the arm body via the module call graph.
    pub emissions: Vec<Emission>,
    /// Whether the closure records a completed transaction
    /// (`completed.insert`).
    pub completes: bool,
}

impl Arm {
    /// Display label, e.g. `client/InvokeRot`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.role.name(), self.variants.join("|"))
    }
}

/// The derived SNOW facts for one protocol, from walks over the graph.
/// `None` bounds mean unbounded.
#[derive(Clone, Debug, Default)]
pub struct Derived {
    /// R: request waves toward servers on the fault-free read path.
    pub rounds: Option<u32>,
    /// V: value-reply versions accumulated along the read path.
    pub values: Option<u32>,
    /// N: no read response is deferrable.
    pub nonblocking: bool,
    /// W: from `const SUPPORTS_MULTI_WRITE`.
    pub write_tx: bool,
    /// From `const CONSISTENCY`.
    pub consistency: String,
    /// Messages on the longest fault-free read path (requests + replies).
    pub msgs_per_read: Option<u32>,
    /// Messages on the longest fault-free direct write path.
    pub msgs_per_write: Option<u32>,
}

impl Derived {
    /// Definition 4 over the derivation: one round, one value,
    /// non-blocking.
    pub fn fast(&self) -> bool {
        self.rounds == Some(1) && self.values == Some(1) && self.nonblocking
    }
}

/// A whole protocol module's handler graph plus its derivation.
#[derive(Clone, Debug)]
pub struct HandlerGraph {
    /// Protocol system name (from the declaration).
    pub system: String,
    /// Workspace-relative module path.
    pub path: String,
    /// The arms (nodes).
    pub arms: Vec<Arm>,
    /// Variants injected by the workload driver
    /// (`rot_invoke` / `wtx_invoke` returns).
    pub injected: Vec<String>,
    /// Variants that only ever arrive via `set_timer`.
    pub timer_only: Vec<String>,
    /// The derived tuple.
    pub derived: Derived,
}

fn bound(v: Option<u32>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "\"unbounded\"".to_string(),
    }
}

fn opt_bound_label(v: Option<u32>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "∞".to_string(),
    }
}

impl HandlerGraph {
    /// The JSON object for the `protocols` section of
    /// `LINT_report.json` v2.
    pub fn to_json(&self) -> String {
        let mut arms = Vec::new();
        for a in &self.arms {
            let emissions: Vec<String> = a
                .emissions
                .iter()
                .map(|e| {
                    format!(
                        "{{\"variant\":{},\"dest\":{},\"line\":{}}}",
                        json_str(&e.variant),
                        json_str(e.dest.name()),
                        e.line
                    )
                })
                .collect();
            arms.push(format!(
                "{{\"role\":{},\"consumes\":[{}],\"line\":{},\"completes\":{},\"emits\":[{}]}}",
                json_str(a.role.name()),
                a.variants
                    .iter()
                    .map(|v| json_str(v))
                    .collect::<Vec<_>>()
                    .join(","),
                a.line,
                a.completes,
                emissions.join(",")
            ));
        }
        let d = &self.derived;
        let names = |vs: &[String]| vs.iter().map(|v| json_str(v)).collect::<Vec<_>>().join(",");
        format!(
            "{{\"system\":{},\"path\":{},\"derived\":{{\"rounds\":{},\"values\":{},\
             \"nonblocking\":{},\"write_tx\":{},\"consistency\":{},\
             \"msgs_per_read\":{},\"msgs_per_write\":{}}},\"arms\":[{}],\
             \"injected\":[{}],\"timer_only\":[{}]}}",
            json_str(&self.system),
            json_str(&self.path),
            bound(d.rounds),
            bound(d.values),
            d.nonblocking,
            d.write_tx,
            json_str(&d.consistency),
            bound(d.msgs_per_read),
            bound(d.msgs_per_write),
            arms.join(","),
            names(&self.injected),
            names(&self.timer_only)
        )
    }

    /// This protocol's subgraph cluster in the workspace DOT artifact.
    fn to_dot_cluster(&self, idx: usize, out: &mut String) {
        let d = &self.derived;
        let _ = writeln!(out, "  subgraph cluster_{idx} {{");
        let _ = writeln!(
            out,
            "    label=\"{} — R={} V={} N={} W={}\";",
            self.system,
            opt_bound_label(d.rounds),
            opt_bound_label(d.values),
            d.nonblocking,
            d.write_tx
        );
        let _ = writeln!(out, "    style=rounded; color=gray60;");
        let node_id = |a: &Arm| format!("p{}_{}_{}", idx, a.role.name(), a.variants.join("_"));
        for a in &self.arms {
            let shape = match a.role {
                Role::Client => "ellipse",
                Role::Server => "box",
            };
            let peri = if a.completes { ", peripheries=2" } else { "" };
            let _ = writeln!(
                out,
                "    {} [label=\"{}\", shape={}{}];",
                node_id(a),
                a.label(),
                shape,
                peri
            );
        }
        // Edges: resolve each emission to the arm(s) consuming the
        // variant, exactly like the flow walk does.
        for a in &self.arms {
            for e in &a.emissions {
                let style = match e.dest {
                    DestClass::SelfTimer => " [style=dashed]",
                    DestClass::StoredClient => " [color=red, penwidth=2]",
                    _ => "",
                };
                for b in &self.arms {
                    if b.variants.iter().any(|v| v == &e.variant) {
                        let _ = writeln!(
                            out,
                            "    {} -> {} [label=\"{}\"]{};",
                            node_id(a),
                            node_id(b),
                            e.variant,
                            style
                        );
                    }
                }
            }
        }
        let _ = writeln!(out, "  }}");
    }

    /// Render a set of protocol graphs as one DOT digraph
    /// (`results/FLOW_graph.dot`). Renders with e.g.
    /// `dot -Tsvg results/FLOW_graph.dot -o flow.svg`.
    pub fn render_dot(graphs: &[HandlerGraph]) -> String {
        let mut out = String::new();
        out.push_str("// snowflow handler graphs — emitted by `cargo run -p snowlint`.\n");
        out.push_str("// Ellipses: client arms. Boxes: server arms. Double border:\n");
        out.push_str("// completion point. Dashed: self-timer. Red: deferrable response\n");
        out.push_str("// (destination is a stashed client pid, not env.from).\n");
        out.push_str("digraph snowflow {\n  rankdir=LR;\n  fontsize=10;\n");
        for (i, g) in graphs.iter().enumerate() {
            g.to_dot_cluster(i, &mut out);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_graph() -> HandlerGraph {
        HandlerGraph {
            system: "MINI".into(),
            path: "crates/protocols/src/mini.rs".into(),
            arms: vec![
                Arm {
                    role: Role::Client,
                    variants: vec!["InvokeRot".into()],
                    line: 10,
                    emissions: vec![Emission {
                        variant: "Req".into(),
                        dest: DestClass::Server,
                        line: 11,
                        via: vec![],
                    }],
                    completes: false,
                },
                Arm {
                    role: Role::Server,
                    variants: vec!["Req".into()],
                    line: 20,
                    emissions: vec![Emission {
                        variant: "Resp".into(),
                        dest: DestClass::Sender,
                        line: 21,
                        via: vec![],
                    }],
                    completes: false,
                },
                Arm {
                    role: Role::Client,
                    variants: vec!["Resp".into()],
                    line: 30,
                    emissions: vec![],
                    completes: true,
                },
            ],
            injected: vec!["InvokeRot".into()],
            timer_only: vec![],
            derived: Derived {
                rounds: Some(1),
                values: Some(1),
                nonblocking: true,
                write_tx: false,
                consistency: "Causal".into(),
                msgs_per_read: Some(2),
                msgs_per_write: None,
            },
        }
    }

    #[test]
    fn json_has_the_derived_tuple_and_arms() {
        let j = mini_graph().to_json();
        assert!(j.contains("\"system\":\"MINI\""));
        assert!(j.contains("\"rounds\":1"));
        assert!(j.contains("\"msgs_per_write\":\"unbounded\""));
        assert!(j.contains("\"consumes\":[\"InvokeRot\"]"));
        assert!(j.contains("\"dest\":\"sender\""));
        assert!(j.contains("\"injected\":[\"InvokeRot\"]"));
        assert!(j.contains("\"timer_only\":[]"));
    }

    #[test]
    fn dot_is_a_digraph_with_edges() {
        let dot = HandlerGraph::render_dot(&[mini_graph()]);
        assert!(dot.starts_with("// snowflow handler graphs"));
        assert!(dot.contains("digraph snowflow"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"MINI — R=1 V=1 N=true W=false\""));
        assert!(dot.contains("p0_client_InvokeRot -> p0_server_Req [label=\"Req\"]"));
        assert!(dot.contains("peripheries=2"));
    }
}
