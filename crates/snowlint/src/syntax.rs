//! Token-tree navigation shared by the property and flow passes: block
//! matching, `fn` body location, and `match` arm splitting over the
//! lexer's flat token stream. These helpers only track bracket depth —
//! they never need full expression parsing, which is what keeps the
//! lint fast and dependency-free.

use crate::lexer::{TokKind, Token};

/// Index of the token closing the block opened at `open` (which must be
/// a `{`, `[` or `(`), or None if unbalanced.
pub fn block_end(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "[" | "(" => depth += 1,
                "}" | "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Locate the `{..}` body of the fn starting at token `fn_i`; returns
/// ((body_start, body_end_exclusive), index_after_body).
pub fn fn_body(toks: &[Token], fn_i: usize) -> Option<((usize, usize), usize)> {
    let mut j = fn_i;
    // The first `{` after the signature opens the body (signatures here
    // never contain braces).
    while j < toks.len() && !toks[j].is_punct("{") {
        j += 1;
    }
    let end = block_end(toks, j)?;
    Some(((j + 1, end), end))
}

/// Split the arms of the `match` block whose `{` is at `open` into
/// `(pattern, body)` token-slices.
pub fn split_arms(toks: &[Token], open: usize) -> Vec<(&[Token], &[Token])> {
    let mut arms = Vec::new();
    let Some(mend) = block_end(toks, open) else {
        return arms;
    };
    let mut j = open + 1;
    while j < mend {
        // Pattern until a depth-0 `=>`.
        let pstart = j;
        let mut depth = 0i32;
        while j < mend {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= mend {
            break;
        }
        let pattern = &toks[pstart..j];
        j += 1; // skip `=>`
        let bstart = j;
        let body;
        if j < mend && toks[j].is_punct("{") {
            let bend = block_end(toks, j).unwrap_or(mend).min(mend);
            body = &toks[bstart..=bend.min(mend.saturating_sub(1))];
            j = bend + 1;
            if j < mend && toks[j].is_punct(",") {
                j += 1;
            }
        } else {
            let mut depth = 0i32;
            while j < mend {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            body = &toks[bstart..j];
            if j < mend {
                j += 1; // skip `,`
            }
        }
        arms.push((pattern, body));
    }
    arms
}

/// Split the first `match` block inside `[start, end)` into
/// `(pattern, body)` token-slices per arm.
pub fn match_arms(toks: &[Token], start: usize, end: usize) -> Vec<(&[Token], &[Token])> {
    let mut i = start;
    while i < end && !toks[i].is_ident("match") {
        i += 1;
    }
    while i < end && !toks[i].is_punct("{") {
        i += 1;
    }
    if i >= end {
        return Vec::new();
    }
    split_arms(toks, i)
}

/// Find the `{` opening the first `match <recv> . <field> {` inside
/// `[start, end)` — e.g. `find_match_on(toks, a, b, "env", "msg")` for
/// a protocol handler's dispatch match. Returns the index of the `{`.
pub fn find_match_on(
    toks: &[Token],
    start: usize,
    end: usize,
    recv: &str,
    field: &str,
) -> Option<usize> {
    let mut i = start;
    while i + 4 < end {
        if toks[i].is_ident("match")
            && toks[i + 1].is_ident(recv)
            && toks[i + 2].is_punct(".")
            && toks[i + 3].is_ident(field)
            && toks[i + 4].is_punct("{")
        {
            return Some(i + 4);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn match_on_env_msg_is_found_and_split() {
        let src = r#"
            fn handler(ctx: &mut Ctx) {
                let x = match mode { A => 1, B => 2 };
                for env in ctx.recv() {
                    match env.msg {
                        Msg::A { id } => { go(id); }
                        Msg::B { .. } | Msg::C { .. } => other(),
                        _ => {}
                    }
                }
            }
        "#;
        let lx = lex(src);
        let open =
            find_match_on(&lx.tokens, 0, lx.tokens.len(), "env", "msg").expect("dispatch match");
        let arms = split_arms(&lx.tokens, open);
        assert_eq!(arms.len(), 3);
        assert!(arms[0].0.iter().any(|t| t.is_ident("A")));
        assert!(arms[1].0.iter().any(|t| t.is_ident("C")));
        // The earlier scrutinee match is not picked up.
        assert!(!arms[0].1.iter().any(|t| t.text == "1"));
    }
}
