//! snowlint — the workspace's static determinism-and-properties pass.
//!
//! Three rule families, documented in DESIGN.md:
//!
//! - **Determinism** ([`determinism`]): keep hash-ordered collections,
//!   wall clocks, ambient RNGs, ad-hoc threads and `unsafe` out of the
//!   paths that must replay bit-identically from a seed.
//! - **SNOW properties** ([`properties`]): every protocol module
//!   declares its claimed `(R, V, N, W)` tuple in `snow_properties!`;
//!   the lint re-derives message-round structure from the module's
//!   `Msg` enum and handler match arms and cross-checks declaration,
//!   extraction, and the paper's Table 1 data.
//! - **Robustness** ([`robustness`]): no panicking `.unwrap()` /
//!   `.expect()` in protocol modules — the fault injector makes the
//!   "impossible" arms reachable.
//! - **Message flow** ([`flow`]): snowflow re-derives each protocol's
//!   `(R, V, N)` tuple from what its handlers *do* — a per-module
//!   handler graph ([`graph`]) walked for rounds, value accumulation,
//!   deferrable responses, dead arms and nondeterminism taint — and
//!   cross-checks it against the declaration and `paper_table1()`.
//!
//! Suppressions are always justified: inline
//! `// snowlint: allow(rule): why` (covers its own and the next line)
//! or a `[[allow]]` entry in the workspace `snowlint.toml`. Unused
//! suppressions are warnings, so the allowlist cannot rot — and entries
//! age: one that is ≥5 PRs older than the current PR (counted from
//! CHANGES.md) without a bumped `since` is an error.
//!
//! Run as `cargo run -p snowlint` (writes `results/LINT_report.json`
//! and `results/FLOW_graph.dot`) or via the `workspace_passes_snowlint`
//! test every crate carries. Scanning fans out over [`cbf_par`] and
//! respects the `SNOWBOUND_MIN_WORK` serial-path floor.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod determinism;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod properties;
pub mod report;
pub mod robustness;
pub mod syntax;

use config::Config;
use graph::HandlerGraph;
use report::{Finding, Report, Severity, Suppressed};
use std::path::{Path, PathBuf};

/// How many PRs an allowlist entry may ride on one justification
/// before it must be re-audited.
const ALLOW_MAX_AGE: u32 = 5;

/// Directories never scanned (build output, vendored deps, artifacts,
/// the lint's own deliberately-bad fixtures).
const SKIP_DIRS: &[&str] = &["target", "vendor", "results", "node_modules"];

/// Workspace-relative directory prefixes never scanned.
const SKIP_PREFIXES: &[&str] = &["crates/snowlint/fixtures"];

/// Where the Table 1 exhibit data lives.
const PAPER_TABLE_FILE: &str = "crates/core/src/audit.rs";

/// Is this workspace-relative path a protocol module that must carry a
/// `snow_properties!` declaration?
fn is_protocol_module(rel: &str) -> bool {
    rel.starts_with("crates/protocols/src/")
        && rel.ends_with(".rs")
        && rel != "crates/protocols/src/lib.rs"
        && !rel.starts_with("crates/protocols/src/common/")
}

/// Walk up from `CARGO_MANIFEST_DIR` (or the current directory) to the
/// first `Cargo.toml` containing a `[workspace]` table.
pub fn find_workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

/// Collect every first-party `.rs` file under `root`, sorted, as
/// workspace-relative `/`-separated paths.
fn collect_rs_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = path
                .strip_prefix(root)
                .map(|p| p.to_string_lossy().replace('\\', "/"))
                .unwrap_or_default();
            if path.is_dir() {
                if name.starts_with('.')
                    || SKIP_DIRS.contains(&name.as_ref())
                    || SKIP_PREFIXES.iter().any(|p| rel == *p)
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    out
}

/// Count the PRs recorded in CHANGES.md; the PR being built is the
/// next one. Drives allowlist-entry aging.
pub fn current_pr(root: &Path) -> u32 {
    let landed = std::fs::read_to_string(root.join("CHANGES.md"))
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count() as u32)
        .unwrap_or(0);
    landed + 1
}

/// Knobs for [`check_workspace_with`].
#[derive(Clone, Debug, Default)]
pub struct CheckOptions {
    /// Scan only these workspace-relative files (from
    /// `git diff --name-only`). When set, unused-suppression hygiene is
    /// skipped — an entry's user may simply not be in the changed set.
    pub only_files: Option<Vec<String>>,
}

/// Run the whole pass over the workspace at `root`.
pub fn check_workspace(root: &Path) -> Report {
    check_workspace_with(root, &CheckOptions::default())
}

/// What scanning one file produces; folded into the report in path
/// order so the parallel fan-out stays deterministic.
struct FileScan {
    rel: String,
    findings: Vec<Finding>,
    allows: Vec<lexer::Annotation>,
    flow: Option<HandlerGraph>,
    is_protocol: bool,
}

/// Run the whole pass over the workspace at `root` with options.
pub fn check_workspace_with(root: &Path, opts: &CheckOptions) -> Report {
    let mut report = Report::default();
    let mut raw: Vec<Finding> = Vec::new();

    // Allowlist.
    let cfg_path = root.join("snowlint.toml");
    let cfg = match std::fs::read_to_string(&cfg_path) {
        Ok(text) => Config::parse(&text),
        Err(_) => Config::default(),
    };
    for (line, problem) in &cfg.problems {
        report.warnings.push(Finding {
            severity: Severity::Warning,
            ..Finding::error("allowlist", "snowlint.toml", *line, 1, problem.clone())
        });
    }

    // Table 1 reference data.
    let paper = std::fs::read_to_string(root.join(PAPER_TABLE_FILE))
        .map(|src| properties::parse_paper_table(&lexer::lex(&src)))
        .unwrap_or_default();

    // Scan, fanning per-file work out over cbf-par. Lex + rules run at
    // roughly 100µs/file; the SNOWBOUND_MIN_WORK floor keeps tiny
    // changed-only sets on the serial path.
    let mut files = collect_rs_files(root);
    if let Some(only) = &opts.only_files {
        files.retain(|rel| only.iter().any(|o| o == rel));
    }
    let scans: Vec<FileScan> = cbf_par::parallel_map_costed(files, 100_000, |rel| {
        let mut findings = Vec::new();
        let mut scan = FileScan {
            rel: rel.clone(),
            findings: Vec::new(),
            allows: Vec::new(),
            flow: None,
            is_protocol: false,
        };
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            return scan;
        };
        let lx = lexer::lex(&src);
        determinism::check(&rel, &lx, &mut findings);
        if is_protocol_module(&rel) {
            properties::check_protocol(&rel, &lx, &paper, &mut findings);
            robustness::check_protocol(&rel, &lx, &mut findings);
            scan.flow = flow::check_protocol(&rel, &lx, &paper, &mut findings);
            scan.is_protocol = true;
        }
        scan.findings = findings;
        scan.allows = lx.allows;
        scan
    });

    let mut annos: Vec<(String, lexer::Annotation, bool)> = Vec::new();
    for scan in scans {
        report.files_scanned += 1;
        if scan.is_protocol {
            report.protocols_checked += 1;
        }
        raw.extend(scan.findings);
        report.flows.extend(scan.flow);
        for a in scan.allows {
            annos.push((scan.rel.clone(), a, false));
        }
    }
    report.flows.sort_by(|a, b| a.system.cmp(&b.system));

    // Apply suppressions: inline annotations first (own line + next
    // line), then allowlist entries.
    let mut cfg_used = vec![false; cfg.allows.len()];
    for f in raw {
        let inline = annos.iter_mut().find(|(path, a, _)| {
            *path == f.path && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line)
        });
        if let Some((_, a, used)) = inline {
            *used = true;
            report.suppressed.push(Suppressed {
                finding: f,
                justification: a.justification.clone(),
            });
            continue;
        }
        let entry = cfg
            .allows
            .iter()
            .enumerate()
            .find(|(_, e)| e.covers(&f.rule, &f.path));
        if let Some((idx, e)) = entry {
            cfg_used[idx] = true;
            report.suppressed.push(Suppressed {
                finding: f,
                justification: e.justification.clone(),
            });
            continue;
        }
        report.errors.push(f);
    }

    // A suppression nobody needs is a warning: the allowlist must not
    // rot. Skipped under --changed-only, where "nobody needs" may just
    // mean "its user was not in the changed set".
    let full_scan = opts.only_files.is_none();
    for (path, a, used) in &annos {
        if !used && full_scan {
            report.warnings.push(Finding {
                severity: Severity::Warning,
                ..Finding::error(
                    "allowlist",
                    path,
                    a.line,
                    1,
                    format!(
                        "unused inline allow({}) — nothing fires here anymore",
                        a.rule
                    ),
                )
            });
        } else if *used && a.justification.is_empty() {
            report.warnings.push(Finding {
                severity: Severity::Warning,
                ..Finding::error(
                    "allowlist",
                    path,
                    a.line,
                    1,
                    format!("inline allow({}) has no justification", a.rule),
                )
            });
        }
    }
    let pr = current_pr(root);
    for (idx, e) in cfg.allows.iter().enumerate() {
        if !cfg_used[idx] && full_scan {
            report.warnings.push(Finding {
                severity: Severity::Warning,
                ..Finding::error(
                    "allowlist",
                    "snowlint.toml",
                    e.line,
                    1,
                    format!("unused [[allow]] for {} on {} — remove it", e.rule, e.path),
                )
            });
        }
        // Aging: a justification is an audit, not a grant in perpetuity.
        match e.since {
            None => report.warnings.push(Finding {
                severity: Severity::Warning,
                ..Finding::error(
                    "allowlist",
                    "snowlint.toml",
                    e.line,
                    1,
                    format!(
                        "[[allow]] for {} on {} has no since field — add the PR \
                         number its justification was audited in",
                        e.rule, e.path
                    ),
                )
            }),
            Some(since) if pr.saturating_sub(since) >= ALLOW_MAX_AGE => {
                report.errors.push(
                    Finding::error(
                        "allowlist",
                        "snowlint.toml",
                        e.line,
                        1,
                        format!(
                            "[[allow]] for {} on {} is {} PRs old (since PR {since}, \
                             now PR {pr})",
                            e.rule,
                            e.path,
                            pr - since
                        ),
                    )
                    .with_help(
                        "re-audit the suppression: bump since after confirming the \
                         justification still holds, or remove the entry"
                            .into(),
                    ),
                );
            }
            Some(_) => {}
        }
    }

    let key = |f: &Finding| (f.path.clone(), f.line, f.col, f.rule.clone());
    report.errors.sort_by_key(key);
    report.warnings.sort_by_key(key);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_module_classification() {
        assert!(is_protocol_module("crates/protocols/src/cops.rs"));
        assert!(is_protocol_module("crates/protocols/src/cops_snow.rs"));
        assert!(!is_protocol_module("crates/protocols/src/lib.rs"));
        assert!(!is_protocol_module("crates/protocols/src/common/api.rs"));
        assert!(!is_protocol_module("crates/model/src/checker.rs"));
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let root = find_workspace_root().expect("workspace root");
        assert!(root.join("crates/snowlint/Cargo.toml").exists());
        assert!(root.join(PAPER_TABLE_FILE).exists());
    }
}
