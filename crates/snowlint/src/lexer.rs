//! A small Rust tokenizer: exactly enough lexing for the lint rules.
//!
//! Comments and whitespace are skipped (line comments are scanned for
//! `snowlint: allow(...)` annotations first), string/char literals are
//! unescaped, and the remaining source becomes a flat token stream with
//! line/column positions. This is *not* a full Rust lexer — it only has
//! to agree with rustc about where identifiers, literals, comments and
//! strings begin and end, so that rule matching never fires inside a
//! string or comment.

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Number,
    /// String literal (`text` holds the unescaped value).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; `::`, `=>` and `->` are single tokens.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text; for [`TokKind::Str`], the unescaped contents.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// An inline suppression: `// snowlint: allow(rule): justification`.
/// Suppresses findings of `rule` on the annotation's own line and the
/// line directly below it.
#[derive(Clone, Debug)]
pub struct Annotation {
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// Free-text justification after the closing parenthesis.
    pub justification: String,
    /// 1-based line the annotation appears on.
    pub line: u32,
}

/// An inference hint for the snowflow message-flow analysis:
/// `// snowflow: key(value): note`. Hints cover their own line and the
/// line directly below, like [`Annotation`]s. Recognised keys are
/// `role` (handler role when the fn name is ambiguous), `dest` (send
/// destination class) and `values` (versions-per-object weight of an
/// ambiguous `msg_values` arm).
#[derive(Clone, Debug)]
pub struct Hint {
    /// The hint key inside `snowflow: key(...)`.
    pub key: String,
    /// The value inside the parentheses.
    pub value: String,
    /// Free-text note after the closing parenthesis.
    pub note: String,
    /// 1-based line the hint appears on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Inline `snowlint: allow` annotations found in comments.
    pub allows: Vec<Annotation>,
    /// Inline `snowflow:` hints found in comments.
    pub hints: Vec<Hint>,
}

/// Tokenize `src`. Never fails: unrecognized bytes become punctuation.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (also doc `///` and `//!`).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                bump!();
            }
            let text: String = b[start..i].iter().collect();
            if let Some(a) = parse_annotation(&text, tline) {
                out.allows.push(a);
            }
            if let Some(h) = parse_hint(&text, tline) {
                out.hints.push(h);
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if b[j] == 'b' && j + 1 < b.len() && b[j + 1] == 'r' {
                j += 1;
            }
            let mut k = j + 1;
            while k < b.len() && b[k] == '#' {
                k += 1;
            }
            k < b.len() && b[k] == '"' && (b[j] == 'r' || (b[j] == 'b' && b[j + 1] == '"'))
        } {
            // Re-derive the shape, then consume.
            let mut hashes = 0usize;
            let raw;
            if c == 'b' && b[i + 1] == 'r' {
                raw = true;
                bump!();
                bump!();
            } else if c == 'r' {
                raw = true;
                bump!();
            } else {
                raw = false;
                bump!(); // the `b` of b"..."
            }
            while i < b.len() && b[i] == '#' {
                hashes += 1;
                bump!();
            }
            bump!(); // opening quote
            let start = i;
            let mut value = String::new();
            while i < b.len() {
                if b[i] == '"' {
                    // Enough closing hashes?
                    let mut k = i + 1;
                    let mut seen = 0usize;
                    while k < b.len() && b[k] == '#' && seen < hashes {
                        k += 1;
                        seen += 1;
                    }
                    if seen == hashes {
                        value = b[start..i].iter().collect();
                        bump!(); // closing quote
                        for _ in 0..hashes {
                            bump!();
                        }
                        break;
                    }
                }
                if !raw && b[i] == '\\' && i + 1 < b.len() {
                    bump!();
                }
                bump!();
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: if raw { value } else { unescape(&value) },
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            bump!();
            let mut value = String::new();
            while i < b.len() && b[i] != '"' {
                if b[i] == '\\' && i + 1 < b.len() {
                    value.push(b[i]);
                    bump!();
                }
                value.push(b[i]);
                bump!();
            }
            if i < b.len() {
                bump!(); // closing quote
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: unescape(&value),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by another quote.
            let is_lifetime = i + 1 < b.len()
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < b.len() && b[i + 2] == '\'');
            if is_lifetime {
                bump!();
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    bump!();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            } else {
                bump!();
                let start = i;
                while i < b.len() && b[i] != '\'' {
                    if b[i] == '\\' && i + 1 < b.len() {
                        bump!();
                    }
                    bump!();
                }
                let text: String = b[start..i].iter().collect();
                if i < b.len() {
                    bump!();
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text,
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                bump!();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Number: digits, underscores, alphanumerics (suffixes, hex), and
        // a dot only when directly followed by a digit (so `1..=3` stays
        // three tokens).
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() {
                let d = b[i];
                let continues_number = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && i + 1 < b.len() && b[i + 1].is_ascii_digit());
                if continues_number {
                    bump!();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Number,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Punctuation; merge the few two-char tokens the rules look at.
        let two: String = b[i..(i + 2).min(b.len())].iter().collect();
        if two == "::" || two == "=>" || two == "->" {
            bump!();
            bump!();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: two,
                line: tline,
                col: tcol,
            });
            continue;
        }
        bump!();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
    }
    out
}

/// Resolve the escape sequences relevant to comparing source strings:
/// `\\`, `\"`, `\'`, `\n`, `\r`, `\t`, `\0`, and `\u{..}`.
fn unescape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('u') => {
                if chars.peek() == Some(&'{') {
                    chars.next();
                    let mut hex = String::new();
                    for h in chars.by_ref() {
                        if h == '}' {
                            break;
                        }
                        hex.push(h);
                    }
                    if let Ok(cp) = u32::from_str_radix(&hex, 16) {
                        if let Some(ch) = char::from_u32(cp) {
                            out.push(ch);
                        }
                    }
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Parse `snowlint: allow(rule[, rule]): justification` out of one line
/// comment. Returns the *first* rule; multi-rule annotations are split
/// by the caller via repeated parsing — in practice one rule per line.
fn parse_annotation(comment: &str, line: u32) -> Option<Annotation> {
    let text = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let rest = text.strip_prefix("snowlint:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let mut justification = rest[close + 1..].trim();
    justification = justification
        .strip_prefix(':')
        .unwrap_or(justification)
        .trim();
    Some(Annotation {
        rule,
        justification: justification.to_string(),
        line,
    })
}

/// Parse `snowflow: key(value): note` out of one line comment.
fn parse_hint(comment: &str, line: u32) -> Option<Hint> {
    let text = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let rest = text.strip_prefix("snowflow:")?.trim();
    let open = rest.find('(')?;
    let key = rest[..open].trim().to_string();
    let rest = &rest[open + 1..];
    let close = rest.find(')')?;
    let value = rest[..close].trim().to_string();
    let mut note = rest[close + 1..].trim();
    note = note.strip_prefix(':').unwrap_or(note).trim();
    Some(Hint {
        key,
        value,
        note: note.to_string(),
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_strings_and_comments() {
        let lx = lex("let x = \"HashMap\"; // HashMap in a comment\nHashMap");
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // The string and the comment never produce ident tokens.
        assert_eq!(idents, vec!["let", "x", "HashMap"]);
        let last = lx.tokens.last().unwrap();
        assert_eq!((last.line, last.col), (2, 1));
    }

    #[test]
    fn escapes_are_resolved() {
        let lx = lex(r#"const S: &str = "COPS-RW (\u{a7}3.4)";"#);
        let s = lx.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "COPS-RW (§3.4)");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let lx = lex("r#\"no \\escape\"# 'static 'a' fn");
        assert_eq!(lx.tokens[0].kind, TokKind::Str);
        assert_eq!(lx.tokens[0].text, "no \\escape");
        assert_eq!(lx.tokens[1].kind, TokKind::Lifetime);
        assert_eq!(lx.tokens[2].kind, TokKind::Char);
        assert!(lx.tokens[3].is_ident("fn"));
    }

    #[test]
    fn double_colon_merges() {
        let lx = lex("Instant::now()");
        assert!(lx.tokens[0].is_ident("Instant"));
        assert!(lx.tokens[1].is_punct("::"));
        assert!(lx.tokens[2].is_ident("now"));
    }

    #[test]
    fn range_does_not_eat_numbers() {
        let lx = lex("1..=3");
        assert_eq!(lx.tokens[0].text, "1");
        assert_eq!(lx.tokens.last().unwrap().text, "3");
    }

    #[test]
    fn hints_are_collected() {
        let lx = lex(
            "// snowflow: values(unbounded): whole dependency records ride along\n\
             // snowflow: role(client)\n\
             fn step() {}",
        );
        assert_eq!(lx.hints.len(), 2);
        assert_eq!(lx.hints[0].key, "values");
        assert_eq!(lx.hints[0].value, "unbounded");
        assert!(lx.hints[0].note.contains("dependency records"));
        assert_eq!(lx.hints[1].key, "role");
        assert_eq!(lx.hints[1].value, "client");
        assert_eq!(lx.hints[1].line, 2);
        // A snowlint allow is not a hint, and vice versa.
        let lx = lex("// snowlint: allow(wall-clock): bench");
        assert!(lx.hints.is_empty());
        assert_eq!(lx.allows.len(), 1);
    }

    #[test]
    fn annotations_are_collected() {
        let lx =
            lex("// snowlint: allow(hash-collections): scratch map, never iterated\nlet x = 1;");
        assert_eq!(lx.allows.len(), 1);
        assert_eq!(lx.allows[0].rule, "hash-collections");
        assert_eq!(lx.allows[0].line, 1);
        assert!(lx.allows[0].justification.contains("never iterated"));
    }
}
