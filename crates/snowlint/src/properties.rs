//! The SNOW property rule family.
//!
//! Every protocol module in `crates/protocols/src/` declares its claimed
//! `(R, V, N, W)` tuple in a `snow_properties!` block. This module
//! re-derives the message-round structure from the module's `Msg` enum
//! and `ProtocolNode` handler signatures — which variants are
//! client→server requests (`msg_is_request`), which replies carry
//! written values (`msg_values`) — and cross-checks declaration,
//! extraction, and the paper's Table 1 reference data
//! (`paper_table1()` in `crates/core/src/audit.rs`). A protocol whose
//! message flow drifts from its claimed tuple fails here with a
//! file:line diagnostic instead of in a failing repro.

use crate::lexer::{Lexed, TokKind, Token};
use crate::report::Finding;
use crate::syntax::{block_end, fn_body, match_arms};
use std::collections::BTreeSet;

/// Rule: protocol module without a `snow_properties!` declaration.
pub const RULE_MISSING_DECL: &str = "missing-snow-decl";
/// Rule: more than one declaration in a module.
pub const RULE_DUPLICATE_DECL: &str = "duplicate-snow-decl";
/// Rule: a declaration field is malformed.
pub const RULE_BAD_DECL: &str = "malformed-snow-decl";
/// Rule: declared message name is not a `Msg` enum variant.
pub const RULE_UNKNOWN_VARIANT: &str = "unknown-msg-variant";
/// Rule: declared requests diverge from `msg_is_request`.
pub const RULE_REQUESTS: &str = "request-set-mismatch";
/// Rule: declared value replies diverge from `msg_values`.
pub const RULE_VALUES: &str = "value-reply-mismatch";
/// Rule: declaration diverges from the `ProtocolNode` consts.
pub const RULE_CONSTS: &str = "decl-const-mismatch";
/// Rule: declaration names a Table 1 row that does not exist.
pub const RULE_UNKNOWN_ROW: &str = "unknown-paper-row";
/// Rule: declaration falls outside its Table 1 row's bounds.
pub const RULE_PAPER: &str = "paper-mismatch";
/// Rule: declaration claims fast + W + causal with no escape hatch.
pub const RULE_IMPOSSIBLE: &str = "impossible-claim";

/// One parsed `PaperRow { .. }` literal from the Table 1 exhibit data.
#[derive(Clone, Debug)]
pub struct PaperRowData {
    /// System name as printed.
    pub system: String,
    /// R bound string (`"1"`, `"≤2"`, `"≥1"`).
    pub r: String,
    /// V bound string.
    pub v: String,
    /// Non-blocking column.
    pub n: bool,
    /// Write-transaction column.
    pub w: bool,
    /// Consistency column.
    pub consistency: String,
}

/// Parse every `PaperRow { .. }` literal out of the lexed exhibit file.
pub fn parse_paper_table(lx: &Lexed) -> Vec<PaperRowData> {
    let toks = &lx.tokens;
    let mut rows = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("PaperRow") && toks.get(i + 1).is_some_and(|t| t.is_punct("{")) {
            let end = match block_end(toks, i + 1) {
                Some(e) => e,
                None => break,
            };
            let mut row = PaperRowData {
                system: String::new(),
                r: String::new(),
                v: String::new(),
                n: false,
                w: false,
                consistency: String::new(),
            };
            let mut j = i + 2;
            while j + 2 < end {
                if toks[j].kind == TokKind::Ident && toks[j + 1].is_punct(":") {
                    let key = toks[j].text.as_str();
                    let val = &toks[j + 2];
                    match key {
                        "system" => row.system = val.text.clone(),
                        "r" => row.r = val.text.clone(),
                        "v" => row.v = val.text.clone(),
                        "consistency" => row.consistency = val.text.clone(),
                        "n" => row.n = val.is_ident("true"),
                        "w" => row.w = val.is_ident("true"),
                        _ => {}
                    }
                    j += 3;
                } else {
                    j += 1;
                }
            }
            if !row.system.is_empty() {
                rows.push(row);
            }
            i = end;
        } else {
            i += 1;
        }
    }
    rows
}

/// A parsed `snow_properties!` declaration, with source position.
#[derive(Clone, Debug, Default)]
pub struct Decl {
    /// `system` field.
    pub system: String,
    /// `consistency` variant name.
    pub consistency: String,
    /// `rounds` (None = `unbounded`).
    pub rounds: Option<u32>,
    /// `values` (None = `unbounded`).
    pub values: Option<u32>,
    /// `nonblocking`.
    pub nonblocking: bool,
    /// `write_tx`.
    pub write_tx: bool,
    /// `requests` list.
    pub requests: Vec<String>,
    /// `value_replies` list.
    pub value_replies: Vec<String>,
    /// `paper_row` (None = `none`).
    pub paper_row: Option<String>,
    /// `escape_hatch` (None = `none`).
    pub escape_hatch: Option<String>,
    /// Line of the `snow_properties!` token.
    pub line: u32,
}

/// What static extraction recovered from the module source.
#[derive(Clone, Debug, Default)]
pub struct Extraction {
    /// Variants of `enum Msg`.
    pub msg_variants: Vec<String>,
    /// `Msg::X` patterns matched inside `fn msg_is_request`.
    pub requests: BTreeSet<String>,
    /// `Msg::X` patterns whose `fn msg_values` arm is not literally `0`.
    pub value_replies: BTreeSet<String>,
    /// String-literal values of `const NAME` (one per `impl`).
    pub const_names: Vec<String>,
    /// Whether every `const NAME` in the file is a string literal.
    pub names_are_literal: bool,
    /// Values of `const SUPPORTS_MULTI_WRITE`.
    pub const_write: Vec<bool>,
    /// Variant names of `const CONSISTENCY`.
    pub const_consistency: Vec<String>,
}

/// Parse every `snow_properties! { .. }` invocation in the file.
pub fn parse_decls(path: &str, lx: &Lexed, out: &mut Vec<Finding>) -> Vec<Decl> {
    let toks = &lx.tokens;
    let mut decls = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("snow_properties")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!")))
        {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let Some(open) = (i + 2 < toks.len() && toks[i + 2].is_punct("{")).then_some(i + 2) else {
            i += 2;
            continue;
        };
        let Some(end) = block_end(toks, open) else {
            out.push(Finding::error(
                RULE_BAD_DECL,
                path,
                line,
                toks[i].col,
                "unbalanced snow_properties! block".into(),
            ));
            break;
        };
        let mut d = Decl {
            line,
            ..Decl::default()
        };
        let mut ok = true;
        let mut j = open + 1;
        while j < end {
            // Expect `key : value ,`
            if !(toks[j].kind == TokKind::Ident && toks.get(j + 1).is_some_and(|t| t.is_punct(":")))
            {
                out.push(Finding::error(
                    RULE_BAD_DECL,
                    path,
                    toks[j].line,
                    toks[j].col,
                    format!(
                        "expected `field:` in snow_properties!, found `{}`",
                        toks[j].text
                    ),
                ));
                ok = false;
                break;
            }
            let key = toks[j].text.clone();
            let vline = toks[j].line;
            let vcol = toks[j].col;
            j += 2;
            let mut list = Vec::new();
            let mut scalar: Option<&Token> = None;
            if toks.get(j).is_some_and(|t| t.is_punct("[")) {
                let Some(lend) = block_end(toks, j) else {
                    ok = false;
                    break;
                };
                for t in &toks[j + 1..lend] {
                    if t.kind == TokKind::Ident {
                        list.push(t.text.clone());
                    }
                }
                j = lend + 1;
            } else {
                scalar = toks.get(j);
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct(",")) {
                j += 1;
            }
            let bad = |why: &str, out: &mut Vec<Finding>| {
                out.push(Finding::error(
                    RULE_BAD_DECL,
                    path,
                    vline,
                    vcol,
                    format!("snow_properties! field `{key}`: {why}"),
                ));
            };
            match key.as_str() {
                "system" => match scalar {
                    Some(t) if t.kind == TokKind::Str => d.system = t.text.clone(),
                    _ => bad("expected a string literal", out),
                },
                "consistency" => match scalar {
                    Some(t) if t.kind == TokKind::Ident => d.consistency = t.text.clone(),
                    _ => bad("expected a ConsistencyLevel variant name", out),
                },
                "rounds" | "values" => {
                    let parsed = match scalar {
                        Some(t) if t.is_ident("unbounded") => Some(None),
                        Some(t) if t.kind == TokKind::Number => {
                            t.text.parse::<u32>().ok().map(Some)
                        }
                        _ => None,
                    };
                    match parsed {
                        Some(v) if key == "rounds" => d.rounds = v,
                        Some(v) => d.values = v,
                        None => bad("expected an integer or `unbounded`", out),
                    }
                }
                "nonblocking" | "write_tx" => {
                    let parsed = match scalar {
                        Some(t) if t.is_ident("true") => Some(true),
                        Some(t) if t.is_ident("false") => Some(false),
                        _ => None,
                    };
                    match parsed {
                        Some(v) if key == "nonblocking" => d.nonblocking = v,
                        Some(v) => d.write_tx = v,
                        None => bad("expected true or false", out),
                    }
                }
                "requests" => d.requests = list,
                "value_replies" => d.value_replies = list,
                "paper_row" | "escape_hatch" => {
                    let parsed = match scalar {
                        Some(t) if t.is_ident("none") => Some(None),
                        Some(t) if t.kind == TokKind::Str => Some(Some(t.text.clone())),
                        _ => None,
                    };
                    match parsed {
                        Some(v) if key == "paper_row" => d.paper_row = v,
                        Some(v) => d.escape_hatch = v,
                        None => bad("expected a string literal or `none`", out),
                    }
                }
                other => bad(&format!("unknown field `{other}`"), out),
            }
        }
        if ok {
            decls.push(d);
        }
        i = end + 1;
    }
    decls
}

/// Statically extract the message vocabulary and trait consts.
pub fn extract(lx: &Lexed) -> Extraction {
    let toks = &lx.tokens;
    let mut ex = Extraction {
        names_are_literal: true,
        ..Extraction::default()
    };

    let mut i = 0;
    while i < toks.len() {
        // enum Msg { V1 {..}, V2(..), V3, .. }
        if toks[i].is_ident("enum")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("Msg"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("{"))
        {
            if let Some(end) = block_end(toks, i + 2) {
                let mut j = i + 3;
                let mut expecting_variant = true;
                let mut depth = 0i32;
                while j < end {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "{" | "(" | "[" => depth += 1,
                            "}" | ")" | "]" => depth -= 1,
                            "," if depth == 0 => expecting_variant = true,
                            "#" if depth == 0
                                // Attribute: skip the [..] group.
                                && toks.get(j + 1).is_some_and(|t| t.is_punct("[")) =>
                            {
                                if let Some(ae) = block_end(toks, j + 1) {
                                    j = ae;
                                }
                            }
                            _ => {}
                        }
                    } else if t.kind == TokKind::Ident && depth == 0 && expecting_variant {
                        ex.msg_variants.push(t.text.clone());
                        expecting_variant = false;
                    }
                    j += 1;
                }
                i = end;
                continue;
            }
        }

        // fn msg_is_request(..) -> bool { .. }
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("msg_is_request"))
        {
            if let Some((body, end)) = fn_body(toks, i) {
                for k in body.0..body.1 {
                    if toks[k].is_ident("Msg")
                        && toks.get(k + 1).is_some_and(|t| t.is_punct("::"))
                        && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Ident)
                    {
                        ex.requests.insert(toks[k + 2].text.clone());
                    }
                }
                i = end;
                continue;
            }
        }

        // fn msg_values(..) -> u32 { match msg { arms } }
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident("msg_values")) {
            if let Some((body, end)) = fn_body(toks, i) {
                for (pattern, arm_body) in match_arms(toks, body.0, body.1) {
                    let is_zero = arm_body.len() == 1 && arm_body[0].text == "0";
                    if is_zero {
                        continue;
                    }
                    let mut k = 0;
                    while k + 2 < pattern.len() {
                        if pattern[k].is_ident("Msg")
                            && pattern[k + 1].is_punct("::")
                            && pattern[k + 2].kind == TokKind::Ident
                        {
                            ex.value_replies.insert(pattern[k + 2].text.clone());
                        }
                        k += 1;
                    }
                }
                i = end;
                continue;
            }
        }

        // const NAME / SUPPORTS_MULTI_WRITE / CONSISTENCY
        if toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.as_str();
            if matches!(name, "NAME" | "SUPPORTS_MULTI_WRITE" | "CONSISTENCY") {
                // Skip to the `=` of the item.
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct("=") && !toks[j].is_punct(";") {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct("=") {
                    match name {
                        "NAME" => match toks.get(j + 1) {
                            Some(t) if t.kind == TokKind::Str => {
                                ex.const_names.push(t.text.clone())
                            }
                            _ => ex.names_are_literal = false,
                        },
                        "SUPPORTS_MULTI_WRITE" => {
                            if let Some(t) = toks.get(j + 1) {
                                if t.is_ident("true") || t.is_ident("false") {
                                    ex.const_write.push(t.is_ident("true"));
                                }
                            }
                        }
                        "CONSISTENCY"
                            if toks
                                .get(j + 1)
                                .is_some_and(|t| t.is_ident("ConsistencyLevel"))
                                && toks.get(j + 2).is_some_and(|t| t.is_punct("::")) =>
                        {
                            if let Some(t) = toks.get(j + 3) {
                                ex.const_consistency.push(t.text.clone());
                            }
                        }
                        _ => {}
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    ex
}

/// A Table 1 printed bound.
enum Bound {
    Exact(u32),
    AtMost(u32),
    AtLeast(u32),
}

fn parse_bound(s: &str) -> Option<Bound> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('≤') {
        return rest.trim().parse().ok().map(Bound::AtMost);
    }
    if let Some(rest) = s.strip_prefix('≥') {
        return rest.trim().parse().ok().map(Bound::AtLeast);
    }
    s.parse().ok().map(Bound::Exact)
}

/// Is a declared bound (None = unbounded) consistent with the paper's?
pub(crate) fn bound_ok(declared: Option<u32>, paper: &str) -> bool {
    match parse_bound(paper) {
        Some(Bound::Exact(n)) => declared == Some(n),
        Some(Bound::AtMost(n)) => matches!(declared, Some(d) if (1..=n).contains(&d)),
        Some(Bound::AtLeast(n)) => declared.is_none() || declared.is_some_and(|d| d >= n),
        None => false,
    }
}

/// The printed consistency name for a `ConsistencyLevel` variant, as the
/// `Display` impl in `cbf-model` renders it.
fn consistency_display(variant: &str) -> Option<&'static str> {
    Some(match variant {
        "ReadAtomicity" => "Read Atomicity",
        "Causal" => "Causal Consistency",
        "SnapshotIsolation" => "Snapshot Isolation",
        "PerClientPSI" => "Per-Client Parallel SI",
        "Serializable" => "Serializability",
        "ProcessOrderedSerializable" => "PO-Serializability",
        "StrictSerializable" => "Strict Serializability",
        _ => return None,
    })
}

/// Does the variant imply causal consistency (the theorem's scope)?
pub(crate) fn implies_causal(variant: &str) -> bool {
    matches!(
        variant,
        "Causal"
            | "SnapshotIsolation"
            | "Serializable"
            | "ProcessOrderedSerializable"
            | "StrictSerializable"
    )
}

/// Case- and punctuation-insensitive name comparison.
fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

fn set_diff(declared: &[String], extracted: &BTreeSet<String>) -> (Vec<String>, Vec<String>) {
    let declared_set: BTreeSet<&String> = declared.iter().collect();
    let missing: Vec<String> = extracted
        .iter()
        .filter(|v| !declared_set.contains(v))
        .cloned()
        .collect();
    let extra: Vec<String> = declared
        .iter()
        .filter(|v| !extracted.contains(*v))
        .cloned()
        .collect();
    (missing, extra)
}

/// Run every property rule over one protocol module.
pub fn check_protocol(path: &str, lx: &Lexed, paper: &[PaperRowData], out: &mut Vec<Finding>) {
    let decls = parse_decls(path, lx, out);
    if decls.is_empty() {
        out.push(
            Finding::error(
                RULE_MISSING_DECL,
                path,
                1,
                1,
                "protocol module has no snow_properties! declaration".into(),
            )
            .with_help(
                "declare the claimed (R, V, N, W) tuple; see \
                 crates/protocols/src/common/snow.rs"
                    .into(),
            ),
        );
        return;
    }
    for dup in &decls[1..] {
        out.push(Finding::error(
            RULE_DUPLICATE_DECL,
            path,
            dup.line,
            1,
            "more than one snow_properties! declaration in this module".into(),
        ));
    }
    let d = &decls[0];
    let ex = extract(lx);

    // Declared names must be real Msg variants.
    for name in d.requests.iter().chain(&d.value_replies) {
        if !ex.msg_variants.iter().any(|v| v == name) {
            out.push(Finding::error(
                RULE_UNKNOWN_VARIANT,
                path,
                d.line,
                1,
                format!("declared message `{name}` is not a variant of this module's `enum Msg`"),
            ));
        }
    }

    // Round structure: the declaration's request vocabulary must be
    // exactly what msg_is_request matches.
    let (missing, extra) = set_diff(&d.requests, &ex.requests);
    if !missing.is_empty() || !extra.is_empty() {
        out.push(
            Finding::error(
                RULE_REQUESTS,
                path,
                d.line,
                1,
                format!(
                    "declared requests diverge from msg_is_request: \
                     undeclared {missing:?}, declared-but-unmatched {extra:?}"
                ),
            )
            .with_help(
                "a new request round must appear in both the handler and the declaration".into(),
            ),
        );
    }

    // Values-per-reply: the declaration's value-carrying replies must be
    // exactly the non-zero arms of msg_values.
    let (missing, extra) = set_diff(&d.value_replies, &ex.value_replies);
    if !missing.is_empty() || !extra.is_empty() {
        out.push(
            Finding::error(
                RULE_VALUES,
                path,
                d.line,
                1,
                format!(
                    "declared value_replies diverge from msg_values: \
                     uncounted {missing:?}, declared-but-zero {extra:?}"
                ),
            )
            .with_help(
                "every reply that carries written values must be declared — \
                 the V column is audited over exactly these messages"
                    .into(),
            ),
        );
    }

    // Trait consts, when statically unambiguous.
    if ex.names_are_literal && ex.const_names.len() == 1 && ex.const_names[0] != d.system {
        out.push(Finding::error(
            RULE_CONSTS,
            path,
            d.line,
            1,
            format!(
                "declared system {:?} but ProtocolNode::NAME is {:?}",
                d.system, ex.const_names[0]
            ),
        ));
    }
    if !ex.const_write.is_empty()
        && ex.const_write.iter().all(|&w| w == ex.const_write[0])
        && ex.const_write[0] != d.write_tx
    {
        out.push(Finding::error(
            RULE_CONSTS,
            path,
            d.line,
            1,
            format!(
                "declared write_tx: {} but SUPPORTS_MULTI_WRITE is {}",
                d.write_tx, ex.const_write[0]
            ),
        ));
    }
    if !ex.const_consistency.is_empty()
        && ex
            .const_consistency
            .iter()
            .all(|c| c == &ex.const_consistency[0])
        && ex.const_consistency[0] != d.consistency
    {
        out.push(Finding::error(
            RULE_CONSTS,
            path,
            d.line,
            1,
            format!(
                "declared consistency {} but ProtocolNode::CONSISTENCY is ConsistencyLevel::{}",
                d.consistency, ex.const_consistency[0]
            ),
        ));
    }

    // Table 1 cross-check.
    if let Some(row_name) = &d.paper_row {
        match paper.iter().find(|r| &r.system == row_name) {
            None => out.push(Finding::error(
                RULE_UNKNOWN_ROW,
                path,
                d.line,
                1,
                format!("paper_row {row_name:?} has no row in paper_table1() (crates/core/src/audit.rs)"),
            )),
            Some(row) => {
                let mut mismatch = |what: String| {
                    out.push(
                        Finding::error(RULE_PAPER, path, d.line, 1, what).with_help(format!(
                            "the paper's row for {row_name}: R {}, V {}, N {}, W {}, {}",
                            row.r, row.v, row.n, row.w, row.consistency
                        )),
                    );
                };
                if !bound_ok(d.rounds, &row.r) {
                    mismatch(format!(
                        "declared rounds {:?} violate Table 1 bound {} for {}",
                        d.rounds, row.r, row.system
                    ));
                }
                if !bound_ok(d.values, &row.v) {
                    mismatch(format!(
                        "declared values {:?} violate Table 1 bound {} for {}",
                        d.values, row.v, row.system
                    ));
                }
                if d.nonblocking != row.n {
                    mismatch(format!(
                        "declared nonblocking: {} but Table 1 says {}",
                        d.nonblocking, row.n
                    ));
                }
                if d.write_tx != row.w {
                    mismatch(format!(
                        "declared write_tx: {} but Table 1 says {}",
                        d.write_tx, row.w
                    ));
                }
                match consistency_display(&d.consistency) {
                    Some(disp) if normalize(disp) == normalize(&row.consistency) => {}
                    Some(disp) => mismatch(format!(
                        "declared consistency {disp:?} but Table 1 says {:?}",
                        row.consistency
                    )),
                    None => mismatch(format!(
                        "unknown consistency variant {}",
                        d.consistency
                    )),
                }
            }
        }
    }

    // The theorem itself, over declarations: fast + W + causal needs an
    // explicit escape hatch.
    let fast = d.rounds == Some(1) && d.values == Some(1) && d.nonblocking;
    if fast && d.write_tx && implies_causal(&d.consistency) && d.escape_hatch.is_none() {
        out.push(
            Finding::error(
                RULE_IMPOSSIBLE,
                path,
                d.line,
                1,
                "declaration claims fast ROTs (R=1, V=1, N) and multi-object \
                 write transactions under causal-or-stronger consistency — \
                 Theorem 1 says this combination cannot exist"
                    .into(),
            )
            .with_help(
                "give up a property, or document the escape hatch (claimant \
                 protocols, †-style designs that forsake minimal progress)"
                    .into(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const MINI: &str = r#"
        pub enum Msg {
            InvokeRot { id: u32 },
            #[allow(dead_code)]
            RotReq { id: u32 },
            RotResp { id: u32, reads: Vec<u32> },
            PutReq { id: u32 },
            PutAck { id: u32 },
        }
        impl ProtocolNode for FakeNode {
            const NAME: &'static str = "FAKE";
            const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
            const SUPPORTS_MULTI_WRITE: bool = false;
            fn msg_values(msg: &Msg) -> u32 {
                match msg {
                    Msg::RotResp { reads, .. } => reads.len() as u32,
                    _ => 0,
                }
            }
            fn msg_is_request(msg: &Msg) -> bool {
                matches!(msg, Msg::RotReq { .. } | Msg::PutReq { .. })
            }
        }
    "#;

    #[test]
    fn extraction_recovers_the_message_structure() {
        let ex = extract(&lex(MINI));
        assert_eq!(
            ex.msg_variants,
            vec!["InvokeRot", "RotReq", "RotResp", "PutReq", "PutAck"]
        );
        let reqs: Vec<&String> = ex.requests.iter().collect();
        assert_eq!(reqs, vec!["PutReq", "RotReq"]);
        let vals: Vec<&String> = ex.value_replies.iter().collect();
        assert_eq!(vals, vec!["RotResp"]);
        assert_eq!(ex.const_names, vec!["FAKE"]);
        assert_eq!(ex.const_write, vec![false]);
        assert_eq!(ex.const_consistency, vec!["Causal"]);
    }

    #[test]
    fn decl_parses_and_matching_module_is_clean() {
        let src = format!(
            "{MINI}\ncrate::snow_properties! {{
                system: \"FAKE\",
                consistency: Causal,
                rounds: 1,
                values: unbounded,
                nonblocking: true,
                write_tx: false,
                requests: [RotReq, PutReq],
                value_replies: [RotResp],
                paper_row: none,
                escape_hatch: none,
            }}"
        );
        let lx = lex(&src);
        let mut out = Vec::new();
        check_protocol("crates/protocols/src/fake.rs", &lx, &[], &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn drifted_request_set_is_caught() {
        let src = format!(
            "{MINI}\ncrate::snow_properties! {{
                system: \"FAKE\",
                consistency: Causal,
                rounds: 1,
                values: unbounded,
                nonblocking: true,
                write_tx: false,
                requests: [RotReq],
                value_replies: [RotResp],
                paper_row: none,
                escape_hatch: none,
            }}"
        );
        let mut out = Vec::new();
        check_protocol("crates/protocols/src/fake.rs", &lex(&src), &[], &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RULE_REQUESTS);
        assert!(out[0].message.contains("PutReq"));
    }

    #[test]
    fn paper_table_parse_and_bounds() {
        let table = r#"
            PaperRow { system: "COPS", r: "≤2", v: "≤2", n: true, w: false,
                       consistency: "Causal Consistency", dagger: false, },
            PaperRow { system: "Spanner", r: "1", v: "1", n: false, w: true,
                       consistency: "Strict Serializability", dagger: true, },
        "#;
        let rows = parse_paper_table(&lex(table));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].r, "≤2");
        assert!(bound_ok(Some(2), "≤2"));
        assert!(!bound_ok(Some(3), "≤2"));
        assert!(!bound_ok(None, "≤2"));
        assert!(bound_ok(Some(1), "1"));
        assert!(!bound_ok(Some(2), "1"));
        assert!(bound_ok(None, "≥1"));
        assert!(bound_ok(Some(7), "≥1"));
    }

    #[test]
    fn impossible_claim_needs_escape_hatch() {
        let src = format!(
            "{MINI}\ncrate::snow_properties! {{
                system: \"FAKE\",
                consistency: Causal,
                rounds: 1,
                values: 1,
                nonblocking: true,
                write_tx: false,
                requests: [RotReq, PutReq],
                value_replies: [RotResp],
                paper_row: none,
                escape_hatch: none,
            }}"
        );
        // write_tx false: legal.
        let mut out = Vec::new();
        check_protocol("crates/protocols/src/fake.rs", &lex(&src), &[], &mut out);
        assert!(out.iter().all(|f| f.rule != RULE_IMPOSSIBLE));

        let src = src.replace("write_tx: false", "write_tx: true");
        let mut out = Vec::new();
        check_protocol("crates/protocols/src/fake.rs", &lex(&src), &[], &mut out);
        assert!(out.iter().any(|f| f.rule == RULE_IMPOSSIBLE), "{out:#?}");
    }

    #[test]
    fn missing_decl_is_an_error() {
        let mut out = Vec::new();
        check_protocol("crates/protocols/src/fake.rs", &lex(MINI), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RULE_MISSING_DECL);
    }
}
