//! The `snowlint.toml` allowlist: file- or directory-scoped suppressions,
//! each with a mandatory justification. Parsed with a tiny TOML subset
//! reader (tables of `[[allow]]` with `key = "value"` pairs) so the crate
//! stays dependency-free.

/// One allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule this entry silences.
    pub rule: String,
    /// Workspace-relative file path, or a directory prefix ending in `/`.
    pub path: String,
    /// Why the suppression is sound. Mandatory.
    pub justification: String,
    /// PR number the justification was last audited in. Entries age:
    /// once `current_pr - since >= 5` the entry must be re-justified
    /// (bump `since`) or removed.
    pub since: Option<u32>,
    /// Line in `snowlint.toml` (for diagnostics).
    pub line: u32,
}

impl AllowEntry {
    /// Does this entry cover `(rule, path)`?
    pub fn covers(&self, rule: &str, path: &str) -> bool {
        self.rule == rule
            && (self.path == path || (self.path.ends_with('/') && path.starts_with(&self.path)))
    }
}

/// Parsed allowlist configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// The `[[allow]]` entries, in file order.
    pub allows: Vec<AllowEntry>,
    /// Parse problems (reported as lint warnings).
    pub problems: Vec<(u32, String)>,
}

impl Config {
    /// Parse `snowlint.toml` content.
    pub fn parse(src: &str) -> Config {
        let mut cfg = Config::default();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    cfg.finish(e);
                }
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    justification: String::new(),
                    since: None,
                    line: line_no,
                });
                continue;
            }
            if line.starts_with('[') {
                cfg.problems
                    .push((line_no, format!("unknown table {line}")));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                cfg.problems
                    .push((line_no, format!("unparseable line: {line}")));
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                cfg.problems
                    .push((line_no, format!("{key}: expected a quoted string")));
                continue;
            };
            let Some(entry) = current.as_mut() else {
                cfg.problems
                    .push((line_no, format!("{key} outside any [[allow]] table")));
                continue;
            };
            match key {
                "rule" => entry.rule = value.to_string(),
                "path" => entry.path = value.to_string(),
                "justification" => entry.justification = value.to_string(),
                "since" => match value.parse::<u32>() {
                    Ok(pr) => entry.since = Some(pr),
                    Err(_) => cfg
                        .problems
                        .push((line_no, format!("since: expected a PR number, got {value}"))),
                },
                other => cfg.problems.push((line_no, format!("unknown key {other}"))),
            }
        }
        if let Some(e) = current.take() {
            cfg.finish(e);
        }
        cfg
    }

    fn finish(&mut self, e: AllowEntry) {
        if e.rule.is_empty() || e.path.is_empty() {
            self.problems
                .push((e.line, "[[allow]] needs both rule and path".to_string()));
        } else if e.justification.is_empty() {
            self.problems.push((
                e.line,
                format!(
                    "[[allow]] for {} on {} has no justification",
                    e.rule, e.path
                ),
            ));
        } else {
            self.allows.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_flags_problems() {
        let cfg = Config::parse(
            "# comment\n\
             [[allow]]\n\
             rule = \"wall-clock\"\n\
             path = \"crates/bench/src/perfbench.rs\"\n\
             justification = \"measures real time\"\n\
             since = \"2\"\n\
             [[allow]]\n\
             rule = \"x\"\n\
             path = \"y\"\n",
        );
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.allows[0].covers("wall-clock", "crates/bench/src/perfbench.rs"));
        assert!(!cfg.allows[0].covers("wall-clock", "crates/bench/src/lib.rs"));
        assert_eq!(cfg.allows[0].since, Some(2));
        assert_eq!(cfg.problems.len(), 1, "missing justification flagged");
    }

    #[test]
    fn bad_since_is_a_problem() {
        let cfg = Config::parse(
            "[[allow]]\n\
             rule = \"r\"\n\
             path = \"p\"\n\
             justification = \"j\"\n\
             since = \"soon\"\n",
        );
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].since, None);
        assert_eq!(cfg.problems.len(), 1);
        assert!(cfg.problems[0].1.contains("since"));
    }

    #[test]
    fn directory_prefix_covers_subtree() {
        let e = AllowEntry {
            rule: "r".into(),
            path: "crates/sim/".into(),
            justification: "j".into(),
            since: None,
            line: 1,
        };
        assert!(e.covers("r", "crates/sim/src/world.rs"));
        assert!(!e.covers("r", "crates/model/src/x.rs"));
    }
}
