//! snowflow — the message-flow rule family.
//!
//! Where [`crate::properties`] cross-checks a protocol's *declared*
//! SNOW tuple against its message vocabulary, this pass re-derives the
//! tuple from what the handlers actually *do*. It parses each protocol
//! module's `client_step`/`server_step` dispatch match into a handler
//! graph ([`crate::graph`]), closes every arm over the module's own
//! call graph, and walks the graph to bound:
//!
//! - **R (rounds)** — the maximum number of server-bound messages on
//!   any acyclic fault-free read path from the `rot_invoke` entry arm.
//!   Timer edges are excluded (retries are the faulty path). A cycle
//!   through a server-bound edge makes R unbounded.
//! - **V (values)** — the maximum sum of value-reply weights along the
//!   same walk. A reply's weight comes from its `msg_values` arm: `0`
//!   means not a value reply, anything else counts one version per
//!   object unless the arm aggregates across transactions (`flat_map`),
//!   which is ambiguous and requires a `// snowflow: values(..)` hint.
//! - **N (non-blocking)** — no value reply anywhere in the module is
//!   addressed to a *stored* client pid (`r.client`). Replying to
//!   `env.from` happens inside the request's own activation and cannot
//!   be deferred; replying to a stashed pid means the response was
//!   parked and re-driven later — the definition of blocking.
//! - **msgs/op** — the longest acyclic path's total non-timer edge
//!   count, for both the read and the direct write path (report-only).
//!
//! The derivation is checked against the `snow_properties!` declaration
//! and the module's `paper_table1()` row, and a derived
//! (R=1, V=1, N) + write-tx + causal tuple — Theorem-1 impossible —
//! must hit a `snowlint.toml` escape hatch even when the declaration
//! already carries one: the whole point is that code, not prose, makes
//! the claim. The same graph feeds a determinism taint pass (ambient
//! randomness/clocks reachable from handlers) and a dead-arm check
//! (consumed variants nothing emits).

use crate::graph::{Arm, Derived, DestClass, Emission, HandlerGraph, Role};
use crate::lexer::{Hint, Lexed, TokKind, Token};
use crate::properties::{self, PaperRowData};
use crate::report::Finding;
use crate::syntax::{block_end, find_match_on, match_arms, split_arms};
use std::collections::{BTreeMap, BTreeSet};

/// Rule: derived rounds-per-read diverges from the declaration.
pub const RULE_FLOW_ROUNDS: &str = "flow-rounds";
/// Rule: derived values-per-read diverges from the declaration.
pub const RULE_FLOW_VALUES: &str = "flow-values";
/// Rule: derived blocking behaviour diverges from the declaration.
pub const RULE_FLOW_BLOCKING: &str = "flow-blocking";
/// Rule: derived tuple falls outside the Table 1 row's bounds.
pub const RULE_FLOW_PAPER: &str = "flow-paper";
/// Rule: derived tuple is Theorem-1 impossible (needs a toml hatch).
pub const RULE_FLOW_IMPOSSIBLE: &str = "flow-impossible";
/// Rule: handler arm consumes a variant nothing emits.
pub const RULE_FLOW_DEAD_ARM: &str = "flow-dead-arm";
/// Rule: nondeterminism source reachable from a handler.
pub const RULE_FLOW_TAINT: &str = "flow-taint";
/// Rule: inference needs (or got a malformed) `// snowflow:` hint.
pub const RULE_FLOW_HINT: &str = "flow-hint";

/// Destination idents that name a server-class process (matched
/// case-insensitively against the first `ctx.send` argument).
const SERVER_WORDS: &[&str] = &[
    "server",
    "servers",
    "srv",
    "coordinator",
    "coord",
    "part",
    "parts",
    "participants",
    "primary",
    "home",
    "sequencer",
    "replica",
    "replicas",
    "shard",
    "shards",
    "leader",
    "master",
];

/// Idents that introduce nondeterminism if reachable from a handler.
const TAINT_SOURCES: &[&str] = &["thread_rng", "from_entropy", "getrandom", "SystemTime"];

/// Sentinel weight for an unbounded value reply.
const UNBOUNDED: u32 = u32::MAX;

/// One module fn: name, source line, body token range.
struct FnDef {
    name: String,
    line: u32,
    body: (usize, usize),
}

/// What a straight-line scan of one token range found.
#[derive(Default, Clone)]
struct Facts {
    emissions: Vec<Emission>,
    calls: Vec<String>,
    completes: bool,
    taints: Vec<(String, u32)>,
}

/// Shared scan context for one module.
struct Scan<'a> {
    path: &'a str,
    toks: &'a [Token],
    hints: &'a [Hint],
    fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// All distinct `Msg::X` variant names in a token slice, in order.
fn msg_variants_in(s: &[Token]) -> Vec<String> {
    let mut vs: Vec<String> = Vec::new();
    for i in 0..s.len().saturating_sub(2) {
        if s[i].is_ident("Msg") && s[i + 1].is_punct("::") && s[i + 2].kind == TokKind::Ident {
            let v = &s[i + 2].text;
            if !vs.iter().any(|x| x == v) {
                vs.push(v.clone());
            }
        }
    }
    vs
}

/// Truncate the stream at `mod tests` — the analysis only reads the
/// protocol implementation, never its unit tests.
fn cut_tests(toks: &[Token]) -> &[Token] {
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is_ident("mod") && toks[i + 1].is_ident("tests") {
            return &toks[..i];
        }
    }
    toks
}

impl<'a> Scan<'a> {
    fn new(path: &'a str, toks: &'a [Token], hints: &'a [Hint]) -> Self {
        let mut fns = Vec::new();
        let mut i = 0;
        while i + 1 < toks.len() {
            if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
                // Find the body `{`, giving up at a `;` (trait method
                // declarations have no body).
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct("{") {
                    if let Some(end) = block_end(toks, j) {
                        fns.push(FnDef {
                            name: toks[i + 1].text.clone(),
                            line: toks[i + 1].line,
                            body: (j + 1, end),
                        });
                        i = j + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(idx);
        }
        Scan {
            path,
            toks,
            hints,
            fns,
            by_name,
        }
    }

    /// The value of hint `key` covering `line` (its own or the next).
    fn hint(&self, key: &str, line: u32) -> Option<&str> {
        self.hints
            .iter()
            .find(|h| h.key == key && (h.line == line || h.line + 1 == line))
            .map(|h| h.value.as_str())
    }

    /// Classify the first `ctx.send` argument.
    fn classify_dest(&self, dest: &[Token], line: u32, out: &mut Vec<Finding>) -> DestClass {
        if let Some(v) = self.hint("dest", line) {
            return match v {
                "sender" => DestClass::Sender,
                "client" | "stored-client" => DestClass::StoredClient,
                "server" => DestClass::Server,
                other => {
                    out.push(Finding::error(
                        RULE_FLOW_HINT,
                        self.path,
                        line,
                        1,
                        format!("unknown dest hint `{other}` (want server|client|sender)"),
                    ));
                    DestClass::Unknown
                }
            };
        }
        let idents: Vec<&str> = dest
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        if idents.contains(&"from") {
            return DestClass::Sender;
        }
        if idents.contains(&"client") {
            return DestClass::StoredClient;
        }
        if idents
            .iter()
            .any(|s| SERVER_WORDS.contains(&s.to_ascii_lowercase().as_str()))
        {
            return DestClass::Server;
        }
        let expr: String = idents.join(".");
        out.push(
            Finding::error(
                RULE_FLOW_HINT,
                self.path,
                line,
                1,
                format!("cannot classify send destination `{expr}`"),
            )
            .with_help("add a `// snowflow: dest(server|client|sender): why` hint".into()),
        );
        DestClass::Unknown
    }

    /// Straight-line facts of one token slice: direct emissions, calls
    /// into module fns, completion recording, taint sources.
    fn facts_of(&self, s: &[Token], out: &mut Vec<Finding>) -> Facts {
        let mut f = Facts::default();
        let mut i = 0;
        while i < s.len() {
            let t = &s[i];
            // ctx.send(dest, Msg::V { .. }) / ctx.set_timer(d, Msg::V { .. })
            if t.is_ident("ctx")
                && s.get(i + 1).is_some_and(|t| t.is_punct("."))
                && s.get(i + 2)
                    .is_some_and(|t| t.is_ident("send") || t.is_ident("set_timer"))
                && s.get(i + 3).is_some_and(|t| t.is_punct("("))
            {
                let timer = s[i + 2].is_ident("set_timer");
                let line = t.line;
                let open = i + 3;
                if let Some(close) = block_end(s, open) {
                    let mut depth = 0i32;
                    let mut comma = None;
                    for (j, a) in s.iter().enumerate().take(close).skip(open + 1) {
                        if a.kind == TokKind::Punct {
                            match a.text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                "," if depth == 0 => {
                                    comma = Some(j);
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                    let (dest_toks, payload) = match comma {
                        Some(c) => (&s[open + 1..c], &s[c + 1..close]),
                        None => (&s[open + 1..close], &s[open + 1..close]),
                    };
                    match msg_variants_in(payload).into_iter().next() {
                        Some(variant) => {
                            let dest = if timer {
                                DestClass::SelfTimer
                            } else {
                                self.classify_dest(dest_toks, line, out)
                            };
                            f.emissions.push(Emission {
                                variant,
                                dest,
                                line,
                                via: Vec::new(),
                            });
                        }
                        None => out.push(Finding::error(
                            RULE_FLOW_HINT,
                            self.path,
                            line,
                            1,
                            "send without a literal Msg:: variant in its payload".into(),
                        )),
                    }
                    i = open + 1;
                    continue;
                }
            }
            // completed.insert(..) — the arm finishes a transaction.
            if t.is_ident("completed")
                && s.get(i + 1).is_some_and(|t| t.is_punct("."))
                && s.get(i + 2).is_some_and(|t| t.is_ident("insert"))
            {
                f.completes = true;
            }
            if t.kind == TokKind::Ident {
                let name = t.text.as_str();
                if TAINT_SOURCES.contains(&name)
                    || (name == "Instant"
                        && s.get(i + 1).is_some_and(|t| t.is_punct("::"))
                        && s.get(i + 2).is_some_and(|t| t.is_ident("now")))
                {
                    f.taints.push((t.text.clone(), t.line));
                }
                // A call into another fn of this module.
                if self.by_name.contains_key(name)
                    && s.get(i + 1).is_some_and(|t| t.is_punct("("))
                    && !(i > 0 && s[i - 1].is_ident("fn"))
                {
                    f.calls.push(name.to_string());
                }
            }
            i += 1;
        }
        f
    }

    /// Close `direct` over the module call graph: every emission,
    /// completion and fn reachable through calls, with the call chain
    /// that reaches it.
    fn close(&self, direct: &Facts, facts: &[Facts]) -> (Facts, Vec<(usize, Vec<String>)>) {
        let mut total = direct.clone();
        let mut reached: Vec<(usize, Vec<String>)> = Vec::new();
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut queue: Vec<(String, Vec<String>)> = direct
            .calls
            .iter()
            .map(|c| (c.clone(), vec![c.clone()]))
            .collect();
        while let Some((name, chain)) = queue.pop() {
            let Some(idxs) = self.by_name.get(&name) else {
                continue;
            };
            if !visited.insert(self.fns[idxs[0]].name.as_str()) {
                continue;
            }
            for &idx in idxs {
                reached.push((idx, chain.clone()));
                let ff = &facts[idx];
                total.completes |= ff.completes;
                for e in &ff.emissions {
                    let mut e = e.clone();
                    e.via = chain.clone();
                    total.emissions.push(e);
                }
                for c in &ff.calls {
                    if !visited.contains(c.as_str()) {
                        let mut ch = chain.clone();
                        ch.push(c.clone());
                        queue.push((c.clone(), ch));
                    }
                }
            }
        }
        // The same send site can be reachable via several chains; one
        // edge per site is enough.
        let mut seen = BTreeSet::new();
        total
            .emissions
            .retain(|e| seen.insert((e.variant.clone(), e.dest.name(), e.line)));
        (total, reached)
    }

    /// Per-variant version weight from the `msg_values` arms. Absent
    /// variants are not value replies.
    fn value_weights(&self, out: &mut Vec<Finding>) -> BTreeMap<String, u32> {
        let mut weights = BTreeMap::new();
        let Some(idxs) = self.by_name.get("msg_values") else {
            return weights;
        };
        let f = &self.fns[idxs[0]];
        for (pat, body) in match_arms(self.toks, f.body.0, f.body.1) {
            let vars = msg_variants_in(pat);
            let Some(first) = pat.first() else { continue };
            if vars.is_empty() {
                continue; // wildcard `_ => 0`
            }
            let pline = first.line;
            let w = if body.iter().any(|t| t.is_ident("flat_map")) {
                // Aggregating across carried transactions: how many
                // versions per object that amounts to is not decidable
                // from the token stream.
                match self.hint("values", pline) {
                    Some("unbounded") => UNBOUNDED,
                    Some(v) => v.parse().unwrap_or_else(|_| {
                        out.push(Finding::error(
                            RULE_FLOW_HINT,
                            self.path,
                            pline,
                            1,
                            format!("bad values hint `{v}` (want a number or `unbounded`)"),
                        ));
                        1
                    }),
                    None => {
                        out.push(
                            Finding::error(
                                RULE_FLOW_HINT,
                                self.path,
                                pline,
                                1,
                                format!(
                                    "msg_values arm for {} aggregates across records; \
                                     its per-object version count is ambiguous",
                                    vars.join("|")
                                ),
                            )
                            .with_help(
                                "add `// snowflow: values(N|unbounded): why` above the arm".into(),
                            ),
                        );
                        1
                    }
                }
            } else if body.len() == 1 && body[0].kind == TokKind::Number && body[0].text == "0" {
                0
            } else {
                1
            };
            if w > 0 {
                for v in vars {
                    weights.insert(v, w);
                }
            }
        }
        weights
    }
}

/// One walkable edge of the handler graph (timer edges are excluded
/// before this point).
#[derive(Clone)]
struct Edge {
    to: usize,
    server: bool,
    value: u32,
    line: u32,
}

/// The maxima a DFS over acyclic paths found, plus which cycles broke
/// which bound.
#[derive(Default)]
struct Best {
    rounds: u32,
    rounds_lines: Vec<u32>,
    rounds_unbounded: Option<u32>,
    values: u32,
    values_lines: Vec<u32>,
    values_unbounded: Option<u32>,
    msgs: u32,
    msgs_unbounded: bool,
}

fn dfs(adj: &[Vec<Edge>], on_path: &mut Vec<usize>, edges: &mut Vec<Edge>, best: &mut Best) {
    let rounds = edges.iter().filter(|e| e.server).count() as u32;
    if rounds > best.rounds {
        best.rounds = rounds;
        best.rounds_lines = edges.iter().filter(|e| e.server).map(|e| e.line).collect();
    }
    if let Some(e) = edges.iter().find(|e| e.value == UNBOUNDED) {
        best.values_unbounded.get_or_insert(e.line);
    } else {
        let vsum: u32 = edges.iter().map(|e| e.value).sum();
        if vsum > best.values {
            best.values = vsum;
            best.values_lines = edges
                .iter()
                .filter(|e| e.value > 0)
                .map(|e| e.line)
                .collect();
        }
    }
    best.msgs = best.msgs.max(edges.len() as u32);

    let node = *on_path.last().expect("path is never empty");
    for e in &adj[node] {
        if let Some(pos) = on_path.iter().position(|&n| n == e.to) {
            // A cycle: any bound consumed inside it is unbounded.
            let cycle: Vec<&Edge> = edges[pos..].iter().chain(std::iter::once(e)).collect();
            if best.rounds_unbounded.is_none() {
                if let Some(se) = cycle.iter().find(|x| x.server) {
                    best.rounds_unbounded = Some(se.line);
                }
            }
            if best.values_unbounded.is_none() {
                if let Some(ve) = cycle.iter().find(|x| x.value > 0) {
                    best.values_unbounded = Some(ve.line);
                }
            }
            best.msgs_unbounded = true;
            continue;
        }
        on_path.push(e.to);
        edges.push(e.clone());
        dfs(adj, on_path, edges, best);
        edges.pop();
        on_path.pop();
    }
}

fn walk(adj: &[Vec<Edge>], entries: &[usize]) -> Best {
    let mut best = Best::default();
    for &entry in entries {
        let mut on_path = vec![entry];
        let mut edges = Vec::new();
        dfs(adj, &mut on_path, &mut edges, &mut best);
    }
    best
}

/// Derive the handler graph and SNOW tuple for one protocol module and
/// cross-check them against the declaration and the paper table.
/// Returns None when the module has no declaration or no recognisable
/// read entry (each already reported).
pub fn check_protocol(
    path: &str,
    lx: &Lexed,
    paper: &[PaperRowData],
    out: &mut Vec<Finding>,
) -> Option<HandlerGraph> {
    let mut decl_noise = Vec::new(); // properties re-reports these
    let decl = properties::parse_decls(path, lx, &mut decl_noise)
        .into_iter()
        .next()?;
    let toks = cut_tests(&lx.tokens);
    let scan = Scan::new(path, toks, &lx.hints);

    // Straight-line facts for every fn, then the value-weight table.
    let mut facts = Vec::with_capacity(scan.fns.len());
    for f in &scan.fns {
        facts.push(scan.facts_of(&toks[f.body.0..f.body.1], out));
    }
    let weights = scan.value_weights(out);

    // Workload-injected variants: what rot_invoke / wtx_invoke return.
    let invoked = |name: &str| -> Vec<String> {
        scan.by_name
            .get(name)
            .map(|idxs| {
                let b = scan.fns[idxs[0]].body;
                msg_variants_in(&toks[b.0..b.1])
            })
            .unwrap_or_default()
    };
    let rot_variants = invoked("rot_invoke");
    let wtx_variants = invoked("wtx_invoke");

    // Handler arms: every Msg::V pattern of a step fn's dispatch match,
    // closed over the call graph.
    let mut arms: Vec<Arm> = Vec::new();
    let mut handler_fns: Vec<usize> = Vec::new();
    for (fi, f) in scan.fns.iter().enumerate() {
        // A handler drains its mailbox: `for env in ctx.recv()`.
        let (lo, hi) = f.body;
        let mut recv = None;
        for k in lo..hi.saturating_sub(5) {
            if toks[k].is_ident("for")
                && toks[k + 1].kind == TokKind::Ident
                && toks[k + 2].is_ident("in")
                && toks[k + 3].is_ident("ctx")
                && toks[k + 4].is_punct(".")
                && toks[k + 5].is_ident("recv")
            {
                recv = Some((toks[k + 1].text.clone(), k));
                break;
            }
        }
        let Some((binding, k)) = recv else { continue };
        handler_fns.push(fi);
        let role = if f.name.contains("client") {
            Role::Client
        } else if f.name.contains("server") {
            Role::Server
        } else {
            match scan.hint("role", f.line) {
                Some("client") => Role::Client,
                Some("server") => Role::Server,
                _ => {
                    out.push(
                        Finding::error(
                            RULE_FLOW_HINT,
                            path,
                            f.line,
                            1,
                            format!("cannot infer the role of handler fn `{}`", f.name),
                        )
                        .with_help("add `// snowflow: role(client|server): why`".into()),
                    );
                    continue;
                }
            }
        };
        let Some(open) = find_match_on(toks, k, hi, &binding, "msg") else {
            out.push(Finding::error(
                RULE_FLOW_HINT,
                path,
                f.line,
                1,
                format!(
                    "handler fn `{}` has no `match {binding}.msg` dispatch",
                    f.name
                ),
            ));
            continue;
        };
        for (pat, body) in split_arms(toks, open) {
            let variants = msg_variants_in(pat);
            let Some(first) = pat.first() else { continue };
            if variants.is_empty() {
                continue; // wildcard arm
            }
            let direct = scan.facts_of(body, out);
            let (closed, _) = scan.close(&direct, &facts);
            arms.push(Arm {
                role,
                variants,
                line: first.line,
                emissions: closed.emissions,
                completes: closed.completes,
            });
        }
    }
    if arms.is_empty() {
        out.push(Finding::error(
            RULE_FLOW_HINT,
            path,
            decl.line,
            1,
            format!("no handler arms found for {}", decl.system),
        ));
        return None;
    }

    // Taint: nondeterminism sources reachable from any handler fn.
    let mut taint_reported: BTreeSet<u32> = BTreeSet::new();
    for &fi in &handler_fns {
        let (_, reached) = scan.close(&facts[fi], &facts);
        let own: Vec<(String, u32, String)> = facts[fi]
            .taints
            .iter()
            .map(|(n, l)| (n.clone(), *l, String::new()))
            .collect();
        let via: Vec<(String, u32, String)> = reached
            .iter()
            .flat_map(|(idx, chain)| {
                facts[*idx]
                    .taints
                    .iter()
                    .map(move |(n, l)| (n.clone(), *l, format!(" via {}", chain.join(" -> "))))
            })
            .collect();
        for (name, line, chain) in own.into_iter().chain(via) {
            if taint_reported.insert(line) {
                out.push(
                    Finding::error(
                        RULE_FLOW_TAINT,
                        path,
                        line,
                        1,
                        format!(
                            "nondeterminism source `{name}` reachable from handler `{}`{chain}",
                            scan.fns[fi].name
                        ),
                    )
                    .with_help(
                        "protocol code must draw randomness and time from the sim only".into(),
                    ),
                );
            }
        }
    }

    // Dead arms: consumed variants nothing emits or injects.
    let mut sent: BTreeSet<&str> = BTreeSet::new();
    let mut timed: BTreeSet<&str> = BTreeSet::new();
    for f in &facts {
        for e in &f.emissions {
            if e.dest == DestClass::SelfTimer {
                timed.insert(e.variant.as_str());
            } else {
                sent.insert(e.variant.as_str());
            }
        }
    }
    let live = |v: &str| {
        sent.contains(v)
            || timed.contains(v)
            || rot_variants.iter().any(|x| x == v)
            || wtx_variants.iter().any(|x| x == v)
    };
    for a in &arms {
        if !a.variants.iter().any(|v| live(v)) {
            out.push(
                Finding::error(
                    RULE_FLOW_DEAD_ARM,
                    path,
                    a.line,
                    1,
                    format!(
                        "handler arm {} consumes a variant no code path emits",
                        a.label()
                    ),
                )
                .with_help("dead protocol code: delete the arm or wire up its sender".into()),
            );
        }
    }

    // Build the walkable edge list (timer and unknown edges excluded;
    // consumers resolved by destination class, preferring the natural
    // role and falling back to any consumer — `env.from` replies can
    // legitimately target the emitter's own role, as in COPS-SNOW's
    // old-reader handshake).
    let adj: Vec<Vec<Edge>> = arms
        .iter()
        .map(|a| {
            let mut es = Vec::new();
            for e in &a.emissions {
                if matches!(e.dest, DestClass::SelfTimer | DestClass::Unknown) {
                    continue;
                }
                let consumers: Vec<usize> = arms
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.variants.contains(&e.variant))
                    .map(|(i, _)| i)
                    .collect();
                let preferred: Vec<usize> = consumers
                    .iter()
                    .copied()
                    .filter(|&i| match e.dest {
                        DestClass::Sender => arms[i].role != a.role,
                        DestClass::StoredClient => arms[i].role == Role::Client,
                        DestClass::Server => arms[i].role == Role::Server,
                        _ => false,
                    })
                    .collect();
                let targets = if preferred.is_empty() {
                    consumers
                } else {
                    preferred
                };
                for t in targets {
                    es.push(Edge {
                        to: t,
                        server: arms[t].role == Role::Server,
                        value: if arms[t].role == Role::Client {
                            weights.get(&e.variant).copied().unwrap_or(0)
                        } else {
                            0
                        },
                        line: e.line,
                    });
                }
            }
            es
        })
        .collect();

    let entries_for = |injected: &[String]| -> Vec<usize> {
        arms.iter()
            .enumerate()
            .filter(|(_, a)| {
                a.role == Role::Client && a.variants.iter().any(|v| injected.contains(v))
            })
            .map(|(i, _)| i)
            .collect()
    };
    let rot_entries = entries_for(&rot_variants);
    if rot_entries.is_empty() {
        out.push(Finding::error(
            RULE_FLOW_HINT,
            path,
            decl.line,
            1,
            format!(
                "cannot locate the read entry arm for {} (no client arm consumes {})",
                decl.system,
                rot_variants.join("|")
            ),
        ));
        return None;
    }
    let read = walk(&adj, &rot_entries);
    let write = walk(&adj, &entries_for(&wtx_variants));

    // Blocking: a value reply addressed to a stored client pid means
    // the response can be parked and re-driven later.
    let deferred: Vec<(u32, &str)> = arms
        .iter()
        .flat_map(|a| a.emissions.iter())
        .filter(|e| {
            e.dest == DestClass::StoredClient && weights.get(&e.variant).copied().unwrap_or(0) > 0
        })
        .map(|e| (e.line, e.variant.as_str()))
        .collect();

    let ex = properties::extract(lx);
    let derived = Derived {
        rounds: match read.rounds_unbounded {
            Some(_) => None,
            None => Some(read.rounds),
        },
        values: match read.values_unbounded {
            Some(_) => None,
            None => Some(read.values),
        },
        nonblocking: deferred.is_empty(),
        write_tx: ex.const_write.first().copied().unwrap_or(decl.write_tx),
        consistency: ex
            .const_consistency
            .first()
            .cloned()
            .unwrap_or_else(|| decl.consistency.clone()),
        msgs_per_read: (!read.msgs_unbounded).then_some(read.msgs),
        msgs_per_write: (!write.msgs_unbounded).then_some(write.msgs),
    };

    let show = |b: Option<u32>| match b {
        Some(n) => n.to_string(),
        None => "unbounded".to_string(),
    };

    // Derivation vs declaration.
    if derived.rounds != decl.rounds {
        // Point at the evidence: the cycle's server hop when the walk
        // diverged to unbounded, the first hop *beyond* the declared
        // budget when it merely overshot, the declaration otherwise.
        let line = match (derived.rounds, decl.rounds) {
            (None, _) => read.rounds_unbounded.unwrap_or(decl.line),
            (Some(d), Some(c)) if d > c => read
                .rounds_lines
                .get(c as usize)
                .or(read.rounds_lines.last())
                .copied()
                .unwrap_or(decl.line),
            _ => decl.line,
        };
        out.push(Finding::error(
            RULE_FLOW_ROUNDS,
            path,
            line,
            1,
            format!(
                "read path performs {} server round(s) but {} declares {}",
                show(derived.rounds),
                decl.system,
                show(decl.rounds)
            ),
        ));
    }
    if derived.values != decl.values {
        let line = match (derived.values, decl.values) {
            (None, _) => read.values_unbounded.unwrap_or(decl.line),
            (Some(d), Some(c)) if d > c => read
                .values_lines
                .get(c as usize)
                .or(read.values_lines.last())
                .copied()
                .unwrap_or(decl.line),
            _ => decl.line,
        };
        out.push(Finding::error(
            RULE_FLOW_VALUES,
            path,
            line,
            1,
            format!(
                "read path accumulates {} version(s) but {} declares {}",
                show(derived.values),
                decl.system,
                show(decl.values)
            ),
        ));
    }
    if derived.nonblocking != decl.nonblocking {
        if let Some(&(line, variant)) = deferred.first() {
            out.push(
                Finding::error(
                    RULE_FLOW_BLOCKING,
                    path,
                    line,
                    1,
                    format!(
                        "{variant} is a value reply sent to a stored client pid — \
                         the response is deferrable, but {} declares nonblocking",
                        decl.system
                    ),
                )
                .with_help(
                    "reply to env.from inside the request's activation, or declare \
                            nonblocking: false"
                        .into(),
                ),
            );
        } else {
            out.push(Finding::error(
                RULE_FLOW_BLOCKING,
                path,
                decl.line,
                1,
                format!(
                    "{} declares blocking reads but every value reply goes to env.from",
                    decl.system
                ),
            ));
        }
    }

    // Derivation vs the paper's Table 1 row.
    if let Some(row_name) = &decl.paper_row {
        if let Some(row) = paper.iter().find(|r| &r.system == row_name) {
            let mut diverges = Vec::new();
            if !properties::bound_ok(derived.rounds, &row.r) {
                diverges.push(format!("R={} vs {}", show(derived.rounds), row.r));
            }
            if !properties::bound_ok(derived.values, &row.v) {
                diverges.push(format!("V={} vs {}", show(derived.values), row.v));
            }
            if derived.nonblocking != row.n {
                diverges.push(format!("N={} vs {}", derived.nonblocking, row.n));
            }
            if derived.write_tx != row.w {
                diverges.push(format!("W={} vs {}", derived.write_tx, row.w));
            }
            if !diverges.is_empty() {
                out.push(Finding::error(
                    RULE_FLOW_PAPER,
                    path,
                    decl.line,
                    1,
                    format!(
                        "derived tuple falls outside Table 1 row `{row_name}`: {}",
                        diverges.join(", ")
                    ),
                ));
            }
        }
        // An unknown row is properties' unknown-paper-row finding.
    }

    // Theorem 1 over the *derived* tuple. Unlike impossible-claim, the
    // declaration's own escape_hatch does not cover this: the code is
    // making the claim now, so the hatch must live in snowlint.toml
    // where it ages and gets re-audited.
    if derived.fast() && derived.write_tx && properties::implies_causal(&derived.consistency) {
        out.push(
            Finding::error(
                RULE_FLOW_IMPOSSIBLE,
                path,
                decl.line,
                1,
                format!(
                    "derived tuple for {} is (R=1, V=1, N) with write transactions and \
                     {} — impossible by Theorem 1",
                    decl.system, derived.consistency
                ),
            )
            .with_help(
                "exhibits of the impossibility boundary need a snowlint.toml entry \
                 explaining which SNOW property the system actually gives up"
                    .into(),
            ),
        );
    }

    let timer_only: Vec<String> = arms
        .iter()
        .flat_map(|a| a.variants.iter())
        .filter(|v| timed.contains(v.as_str()) && !sent.contains(v.as_str()))
        .filter(|v| !rot_variants.contains(v) && !wtx_variants.contains(v))
        .cloned()
        .collect();
    let mut injected = rot_variants;
    injected.extend(wtx_variants);
    injected.dedup();

    Some(HandlerGraph {
        system: decl.system,
        path: path.to_string(),
        arms,
        injected,
        timer_only,
        derived,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// A minimal well-formed protocol module: one round, one value,
    /// non-blocking, no write transactions.
    const MINI: &str = r#"
        pub enum Msg {
            InvokeRot { id: u64 },
            ReadReq { id: u64 },
            ReadResp { id: u64 },
        }
        impl Node {
            fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
                for env in ctx.recv() {
                    match env.msg {
                        Msg::InvokeRot { id } => {
                            ctx.send(c.topo.primary(id), Msg::ReadReq { id });
                        }
                        Msg::ReadResp { id } => {
                            c.completed.insert(id);
                        }
                        _ => {}
                    }
                }
            }
            fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
                for env in ctx.recv() {
                    match env.msg {
                        Msg::ReadReq { id } => {
                            ctx.send(env.from, Msg::ReadResp { id });
                        }
                        _ => {}
                    }
                }
            }
            fn rot_invoke(id: u64) -> Msg { Msg::InvokeRot { id } }
            fn wtx_invoke(id: u64) -> Msg { Msg::InvokeRot { id } }
            fn msg_values(msg: &Msg) -> u32 {
                match msg {
                    Msg::ReadResp { .. } => 1,
                    _ => 0,
                }
            }
        }
        crate::snow_properties! {
            system: "MINI",
            consistency: Causal,
            rounds: 1,
            values: 1,
            nonblocking: true,
            write_tx: false,
            requests: [ReadReq],
            value_replies: [ReadResp],
            paper_row: none,
            escape_hatch: none,
        }
    "#;

    #[test]
    fn mini_module_derives_one_round_one_value_nonblocking() {
        let lx = lex(MINI);
        let mut out = Vec::new();
        let g = check_protocol("p.rs", &lx, &[], &mut out).expect("graph");
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(g.derived.rounds, Some(1));
        assert_eq!(g.derived.values, Some(1));
        assert!(g.derived.nonblocking);
        assert!(!g.derived.write_tx);
        assert_eq!(g.derived.msgs_per_read, Some(2));
        assert_eq!(g.arms.len(), 3);
    }

    #[test]
    fn retry_cycle_makes_rounds_unbounded() {
        let src = MINI.replace(
            "Msg::ReadResp { id } => {\n                            c.completed.insert(id);",
            "Msg::ReadResp { id } => {\n                            ctx.send(c.topo.primary(id), Msg::ReadReq { id });\n                            c.completed.insert(id);",
        );
        let lx = lex(&src);
        let mut out = Vec::new();
        let g = check_protocol("p.rs", &lx, &[], &mut out).expect("graph");
        assert_eq!(g.derived.rounds, None);
        assert_eq!(g.derived.values, None);
        // The declaration still says 1/1, so both walks diverge.
        assert!(out.iter().any(|f| f.rule == RULE_FLOW_ROUNDS));
        assert!(out.iter().any(|f| f.rule == RULE_FLOW_VALUES));
    }

    #[test]
    fn timer_resends_stay_off_the_fault_free_path() {
        let src = MINI.replace(
            "c.completed.insert(id);",
            "c.completed.insert(id);\n                            ctx.set_timer(10, Msg::InvokeRot { id });",
        );
        let lx = lex(&src);
        let mut out = Vec::new();
        let g = check_protocol("p.rs", &lx, &[], &mut out).expect("graph");
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(g.derived.rounds, Some(1));
    }
}
