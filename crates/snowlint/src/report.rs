//! Findings, rustc-style rendering, and the `LINT_report.json` artifact.

use crate::graph::HandlerGraph;
use std::fmt::Write as _;

/// Stable rule-ID registry for the v2 report schema. Codes are
/// append-only: a rule may be retired but its code is never reused, so
/// downstream tooling can key on `code` across releases even if a rule
/// is renamed.
pub const RULE_CODES: &[(&str, &str)] = &[
    ("hash-collections", "SL001"),
    ("wall-clock", "SL002"),
    ("ad-hoc-threads", "SL003"),
    ("unsafe-block", "SL004"),
    ("missing-unsafe-guard", "SL005"),
    ("handler-unwrap", "SL010"),
    ("missing-snow-decl", "SL020"),
    ("duplicate-snow-decl", "SL021"),
    ("malformed-snow-decl", "SL022"),
    ("unknown-msg-variant", "SL023"),
    ("request-set-mismatch", "SL024"),
    ("value-reply-mismatch", "SL025"),
    ("decl-const-mismatch", "SL026"),
    ("unknown-paper-row", "SL027"),
    ("paper-mismatch", "SL028"),
    ("impossible-claim", "SL029"),
    ("flow-rounds", "SL030"),
    ("flow-values", "SL031"),
    ("flow-blocking", "SL032"),
    ("flow-paper", "SL033"),
    ("flow-impossible", "SL034"),
    ("flow-dead-arm", "SL035"),
    ("flow-taint", "SL036"),
    ("flow-hint", "SL037"),
    ("allowlist", "SL090"),
];

/// The stable code for a rule name (`SL999` for rules not in the
/// registry — which the registry test treats as a bug).
pub fn rule_code(rule: &str) -> &'static str {
    RULE_CODES
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|(_, c)| *c)
        .unwrap_or("SL999")
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A rule violation; fails the lint.
    Error,
    /// Lint hygiene (unused allowlist entries, missing justifications);
    /// fails only under `--deny-warnings`.
    Warning,
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name, e.g. `hash-collections`.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or suppress it (optional).
    pub help: Option<String>,
    /// Severity class.
    pub severity: Severity,
}

impl Finding {
    /// Shorthand for an error finding.
    pub fn error(rule: &str, path: &str, line: u32, col: u32, message: String) -> Self {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            col,
            message,
            help: None,
            severity: Severity::Error,
        }
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: String) -> Self {
        self.help = Some(help);
        self
    }

    /// Render one diagnostic in rustc's two-line format.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = format!(
            "{sev}[{rule}]: {msg}\n  --> {path}:{line}:{col}\n",
            rule = self.rule,
            msg = self.message,
            path = self.path,
            line = self.line,
            col = self.col,
        );
        if let Some(h) = &self.help {
            let _ = writeln!(out, "  = help: {h}");
        }
        out
    }
}

/// A finding that an allowlist entry or inline annotation silenced.
#[derive(Clone, Debug)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The justification string of the suppression that matched.
    pub justification: String,
}

/// The outcome of a whole-workspace lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Active errors.
    pub errors: Vec<Finding>,
    /// Active warnings.
    pub warnings: Vec<Finding>,
    /// Findings silenced by a documented suppression.
    pub suppressed: Vec<Suppressed>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of protocol modules whose SNOW declaration was checked.
    pub protocols_checked: usize,
    /// Handler graphs the flow pass derived, one per protocol module.
    pub flows: Vec<HandlerGraph>,
}

impl Report {
    /// No errors (warnings allowed)?
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable report: every diagnostic plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in self.errors.iter().chain(&self.warnings) {
            out.push_str(&f.render());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "snowlint: {} files, {} protocol declarations checked, \
             {} handler graph(s) derived: \
             {} error(s), {} warning(s), {} suppressed",
            self.files_scanned,
            self.protocols_checked,
            self.flows.len(),
            self.errors.len(),
            self.warnings.len(),
            self.suppressed.len()
        );
        out
    }

    /// The `results/LINT_report.json` artifact, schema v2 (documented
    /// in EXPERIMENTS.md): stable `code` IDs on every finding plus the
    /// per-protocol derived SNOW tuples under `protocols`.
    pub fn to_json(&self) -> String {
        fn finding_json(f: &Finding, extra: Option<&str>) -> String {
            let sev = match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let mut s = format!(
                "{{\"code\":{},\"rule\":{},\"severity\":{},\"path\":{},\
                 \"line\":{},\"col\":{},\"message\":{}",
                json_str(rule_code(&f.rule)),
                json_str(&f.rule),
                json_str(sev),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message)
            );
            if let Some(h) = &f.help {
                let _ = write!(s, ",\"help\":{}", json_str(h));
            }
            if let Some(j) = extra {
                let _ = write!(s, ",\"justification\":{}", json_str(j));
            }
            s.push('}');
            s
        }
        let errors: Vec<String> = self.errors.iter().map(|f| finding_json(f, None)).collect();
        let warnings: Vec<String> = self
            .warnings
            .iter()
            .map(|f| finding_json(f, None))
            .collect();
        let suppressed: Vec<String> = self
            .suppressed
            .iter()
            .map(|s| finding_json(&s.finding, Some(&s.justification)))
            .collect();
        let protocols: Vec<String> = self.flows.iter().map(|g| g.to_json()).collect();
        format!(
            "{{\n  \"schema\": \"snowlint/2\",\n  \"schema_version\": 2,\n  \
             \"files_scanned\": {},\n  \
             \"protocols_checked\": {},\n  \"errors\": [{}],\n  \
             \"warnings\": [{}],\n  \"suppressed\": [{}],\n  \
             \"protocols\": [{}]\n}}\n",
            self.files_scanned,
            self.protocols_checked,
            errors.join(","),
            warnings.join(","),
            suppressed.join(","),
            protocols.join(",")
        )
    }
}

/// Minimal JSON string escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let f = Finding::error(
            "hash-collections",
            "crates/model/src/x.rs",
            7,
            3,
            "bad".into(),
        )
        .with_help("use BTreeMap".into());
        let r = f.render();
        assert!(r.starts_with("error[hash-collections]: bad"));
        assert!(r.contains("--> crates/model/src/x.rs:7:3"));
        assert!(r.contains("= help: use BTreeMap"));
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn report_json_parses_shape() {
        let mut rep = Report::default();
        rep.errors
            .push(Finding::error("flow-rounds", "p", 1, 1, "m".into()));
        let j = rep.to_json();
        assert!(j.contains("\"schema\": \"snowlint/2\""));
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"rule\":\"flow-rounds\""));
        assert!(j.contains("\"code\":\"SL030\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"protocols\": []"));
    }

    #[test]
    fn rule_codes_are_unique_and_resolve() {
        let mut seen = std::collections::BTreeSet::new();
        for (rule, code) in RULE_CODES {
            assert!(seen.insert(code), "duplicate code {code}");
            assert_eq!(rule_code(rule), *code);
        }
        assert_eq!(rule_code("no-such-rule"), "SL999");
    }
}
