//! Known-bad fixture: a COPS-SNOW clone whose `snow_properties!` tuple
//! is wrong in three independent ways. Never compiled — lexed by
//! `tests/fixtures.rs` as `crates/protocols/src/bad_cops_snow.rs`:
//!
//! - declares `rounds: 2, values: 2` against Table 1's `1, 1` row for
//!   COPS-SNOW (`paper-mismatch`, twice);
//! - declares `PutAck` as a value reply although its `msg_values` arm
//!   is `0` (`value-reply-mismatch`);
//! - `msg_is_request` matches `OldReaderQuery`, which the declaration
//!   omits (`request-set-mismatch`).

pub enum Msg {
    InvokeRot { id: u64, keys: Vec<u64> },
    RotReq { id: u64, keys: Vec<u64> },
    RotResp { id: u64, reads: Vec<(u64, u64, u64)> },
    PutReq { id: u64, key: u64, value: u64 },
    OldReaderQuery { put: u64 },
    OldReaderResp { put: u64, readers: Vec<u64> },
    PutAck { id: u64, key: u64, ts: u64 },
}

pub struct BadCopsSnowNode;

impl ProtocolNode for BadCopsSnowNode {
    const NAME: &'static str = "BAD-COPS-SNOW";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::RotResp { reads, .. } => reads.len() as u32,
            Msg::PutAck { .. } => 0,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::RotReq { .. } | Msg::PutReq { .. } | Msg::OldReaderQuery { .. }
        )
    }
}

crate::snow_properties! { // line: decl
    system: "BAD-COPS-SNOW",
    consistency: Causal,
    rounds: 2,
    values: 2,
    nonblocking: true,
    write_tx: false,
    requests: [RotReq, PutReq],
    value_replies: [RotResp, PutAck],
    paper_row: "COPS-SNOW",
    escape_hatch: none,
}
