//! Known-bad fixture: a protocol that declares one value per read but
//! whose read path accumulates two — each of the two rounds returns a
//! committed version. Never compiled — lexed by `tests/fixtures.rs` as
//! `crates/protocols/src/bad_flow_values.rs`; `flow-values` must fire
//! on the send of the version *beyond* the declared budget (the second
//! value reply), not the declaration.

pub enum Msg {
    InvokeRot { id: u64 },
    ReadA { id: u64 },
    RespA { id: u64, val: u64 },
    ReadB { id: u64 },
    RespB { id: u64, val: u64 },
}

pub struct BadFlowValuesNode;

impl ProtocolNode for BadFlowValuesNode {
    const NAME: &'static str = "BAD-FLOW-VALUES";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id } => {
                    ctx.send(c.topo.primary(id), Msg::ReadA { id });
                }
                Msg::RespA { id, .. } => {
                    ctx.send(c.topo.primary(id), Msg::ReadB { id });
                }
                Msg::RespB { id, .. } => {
                    c.completed.insert(id);
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::ReadA { id } => {
                    ctx.send(env.from, Msg::RespA { id, val: s.newest(id) });
                }
                Msg::ReadB { id } => {
                    ctx.send(env.from, Msg::RespB { id, val: s.stable(id) }); // line: second-version
                }
                _ => {}
            }
        }
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::RespA { .. } => 1,
            Msg::RespB { .. } => 1,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::ReadA { .. } | Msg::ReadB { .. })
    }
}

crate::snow_properties! { // line: decl
    system: "BAD-FLOW-VALUES",
    consistency: Causal,
    rounds: 2,
    values: 1,
    nonblocking: true,
    write_tx: false,
    requests: [ReadA, ReadB],
    value_replies: [RespA, RespB],
    paper_row: none,
    escape_hatch: none,
}
