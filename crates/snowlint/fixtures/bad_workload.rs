//! Known-bad fixture: a fake client-swarm generator that breaks every
//! determinism rule the million-client tiers depend on. Never compiled
//! — lexed by `tests/fixtures.rs`, which presents it to the lint as
//! `crates/workloads/src/swarm.rs` (a guarded file in a deterministic
//! crate) and asserts each rule fires at the right line. It also drops
//! the `#![deny(unsafe_code)]` guard the real module carries.

use std::collections::HashMap; // line: hash-use
use std::time::SystemTime;

pub struct BadSwarm {
    /// The actual bug pattern: per-client state keyed by a seeded-order
    /// map, so the order clients drain from a wheel slot depends on the
    /// process, not the seed — and the op stream digests diverge.
    due: HashMap<u32, u64>, // line: hash-field
}

impl BadSwarm {
    pub fn new(clients: u32) -> Self {
        // Seeding from the wall clock makes every run a different
        // stream: no pinned digest can survive this.
        let seed = SystemTime::now() // line: clock
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap()
            .as_nanos() as u64;
        let mut due = HashMap::new();
        for c in 0..clients {
            due.insert(c, seed.wrapping_add(c as u64) % 8);
        }
        Self { due }
    }

    pub fn fill_batch(&mut self, want: usize, buf: &mut Vec<(u32, u64)>) {
        buf.clear();
        for (&client, &slot) in self.due.iter() {
            if buf.len() == want {
                break;
            }
            buf.push((client, slot));
        }
    }

    pub fn prefetch_in_background(self) {
        std::thread::spawn(move || drop(self)); // line: thread
    }

    pub fn sample_raw(&self, idx: usize) -> u64 {
        let table = [0u64; 8];
        unsafe { *table.get_unchecked(idx % 8) } // line: unsafe
    }
}
