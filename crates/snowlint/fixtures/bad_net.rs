//! Deliberately-bad net-runtime clone for the fixture tests.
//!
//! One source, two boundary violations, lexed under two paths:
//!
//! * as `crates/sim/src/transport.rs` — a socket smuggled into a
//!   deterministic crate: `net-boundary` fires on every socket type,
//!   and the wall-clock / ad-hoc-thread rules fire as usual;
//! * as `crates/net/src/node.rs` — the sockets, the clock and the
//!   thread are the runtime's business, but the simulator oracle types
//!   in the hot path (`sim-in-net-hot-path`) and the dropped
//!   `#![deny(unsafe_code)]` guard are not.

use std::net::TcpStream; // line: socket-use

/// The replay oracle smuggled into the event loop: if the hot path can
/// consult the sim, a replay match proves nothing.
struct HotPath {
    oracle: World,  // line: sim-world
    cfg: SimConfig, // line: sim-config
}

fn dial(addr: &str) -> TcpStream { // line: socket-dial
    let started = SystemTime::now(); // line: clock
    std::thread::spawn(move || drop(started)); // line: thread
    TcpStream::connect(addr).expect("dial") // line: socket-connect
}
