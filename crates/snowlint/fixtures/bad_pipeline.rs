//! Known-bad clone of the streaming pipeline harness: drops the
//! module's `#![deny(unsafe_code)]` guard and commits the sins the
//! producer/consumer split makes tempting — ad-hoc threads instead of
//! the audited channel wiring, wall-clock spans feeding scheduling
//! decisions, and an unsafe shortcut across the thread boundary. Lexed
//! by the fixture tests under the path `crates/bench/src/pipeline.rs`
//! (and `crates/model/src/streaming.rs` for the hash rule); never
//! compiled.

use std::collections::HashMap; // line: hash
use std::time::Instant;

pub struct BadPipeline {
    shard_of: HashMap<u32, usize>, // line: hash-field
    started: u64,
}

impl BadPipeline {
    pub fn run(&mut self) {
        self.started = Instant::now().elapsed().as_nanos() as u64; // line: clock
        let handle = std::thread::spawn(move || 0u64); // line: thread
        let _ = handle.join();
    }

    pub fn peek(&self, shard: usize) -> Option<&u64> {
        unsafe { Some(&*(&self.started as *const u64).add(shard)) } // line: unsafe
    }
}
