//! Known-bad fixture: a fake consistency checker that breaks every
//! determinism rule. Never compiled — lexed by `tests/fixtures.rs`,
//! which presents it to the lint as `crates/model/src/bad_checker.rs`
//! and asserts each rule fires at the right line.

use std::collections::HashMap; // line: hash-use
use std::time::Instant;

pub struct BadChecker {
    seen: HashMap<u64, u64>, // line: hash-field
}

impl BadChecker {
    pub fn verdict(&self) -> Vec<u64> {
        let started = Instant::now(); // line: clock
        let mut out = Vec::new();
        // The actual bug pattern: HashMap iteration order decides the
        // order verdicts are emitted in.
        for (txid, _) in self.seen.iter() {
            out.push(*txid);
        }
        let _elapsed = started.elapsed();
        out
    }

    pub fn check_in_background(self) {
        std::thread::spawn(move || drop(self)); // line: thread
    }

    pub fn fast_path(&self, idx: usize) -> u64 {
        let slice = [0u64; 4];
        unsafe { *slice.get_unchecked(idx % 4) } // line: unsafe
    }
}
