//! Known-bad fixture: a protocol whose handler reaches ambient
//! randomness through a two-deep call chain — `client_step` calls
//! `backoff_jitter`, which calls `seed_from_os`, which touches
//! `thread_rng`. Never compiled — lexed by `tests/fixtures.rs` as
//! `crates/protocols/src/bad_flow_taint.rs`; `flow-taint` must fire on
//! the source token itself, with the call chain in the message.

pub enum Msg {
    InvokeRot { id: u64 },
    Read { id: u64 },
    ReadResp { id: u64, vals: Vec<u64> },
}

pub struct BadFlowTaintNode;

impl ProtocolNode for BadFlowTaintNode {
    const NAME: &'static str = "BAD-FLOW-TAINT";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id } => {
                    let _pause = backoff_jitter(c.attempts);
                    ctx.send(c.topo.primary(id), Msg::Read { id });
                }
                Msg::ReadResp { id, .. } => {
                    c.completed.insert(id);
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::Read { id } => {
                    ctx.send(env.from, Msg::ReadResp { id, vals: s.read(id) });
                }
                _ => {}
            }
        }
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadResp { .. } => 1,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::Read { .. })
    }
}

fn backoff_jitter(attempts: u32) -> u64 {
    seed_from_os() % (1 << attempts.min(8))
}

fn seed_from_os() -> u64 {
    let mut rng = thread_rng(); // line: taint-source
    rng.next_u64()
}

crate::snow_properties! { // line: decl
    system: "BAD-FLOW-TAINT",
    consistency: Causal,
    rounds: 1,
    values: 1,
    nonblocking: true,
    write_tx: false,
    requests: [Read],
    value_replies: [ReadResp],
    paper_row: none,
    escape_hatch: none,
}
