//! Known-bad fixture: a protocol that declares one-round reads but
//! whose handler graph performs two — the `Read1Resp` arm fires a
//! second server-bound request before completing. Never compiled —
//! lexed by `tests/fixtures.rs` as
//! `crates/protocols/src/bad_flow_rounds.rs`; `flow-rounds` must fire
//! on the extra-round send site, not the declaration.

pub enum Msg {
    InvokeRot { id: u64 },
    Read1 { id: u64 },
    Read1Resp { id: u64, vals: Vec<u64> },
    Read2 { id: u64 },
    Read2Resp { id: u64, vals: Vec<u64> },
}

pub struct BadFlowRoundsNode;

impl ProtocolNode for BadFlowRoundsNode {
    const NAME: &'static str = "BAD-FLOW-ROUNDS";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id } => {
                    ctx.send(c.topo.primary(id), Msg::Read1 { id });
                }
                Msg::Read1Resp { id, .. } => {
                    ctx.send(c.topo.primary(id), Msg::Read2 { id }); // line: extra-round
                }
                Msg::Read2Resp { id, .. } => {
                    c.completed.insert(id);
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::Read1 { id } => {
                    ctx.send(env.from, Msg::Read1Resp { id, vals: s.read(id) });
                }
                Msg::Read2 { id } => {
                    ctx.send(env.from, Msg::Read2Resp { id, vals: s.read(id) });
                }
                _ => {}
            }
        }
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::Read2Resp { .. } => 1,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::Read1 { .. } | Msg::Read2 { .. })
    }
}

crate::snow_properties! { // line: decl
    system: "BAD-FLOW-ROUNDS",
    consistency: Causal,
    rounds: 1,
    values: 1,
    nonblocking: true,
    write_tx: false,
    requests: [Read1, Read2],
    value_replies: [Read2Resp],
    paper_row: none,
    escape_hatch: none,
}
