//! Known-bad fixture: a protocol with a handler arm for a message
//! variant no code path emits, times, or injects — a leftover from a
//! removed invalidation scheme. Never compiled — lexed by
//! `tests/fixtures.rs` as `crates/protocols/src/bad_flow_dead_arm.rs`;
//! `flow-dead-arm` must fire on the dead arm's pattern line.

pub enum Msg {
    InvokeRot { id: u64 },
    Read { id: u64 },
    ReadResp { id: u64, vals: Vec<u64> },
    Invalidate { id: u64 },
}

pub struct BadFlowDeadArmNode;

impl ProtocolNode for BadFlowDeadArmNode {
    const NAME: &'static str = "BAD-FLOW-DEAD-ARM";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id } => {
                    ctx.send(c.topo.primary(id), Msg::Read { id });
                }
                Msg::ReadResp { id, .. } => {
                    c.completed.insert(id);
                }
                Msg::Invalidate { id } => { // line: dead-arm
                    c.cache.remove(&id);
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::Read { id } => {
                    ctx.send(env.from, Msg::ReadResp { id, vals: s.read(id) });
                }
                _ => {}
            }
        }
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadResp { .. } => 1,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::Read { .. })
    }
}

crate::snow_properties! { // line: decl
    system: "BAD-FLOW-DEAD-ARM",
    consistency: Causal,
    rounds: 1,
    values: 1,
    nonblocking: true,
    write_tx: false,
    requests: [Read],
    value_replies: [ReadResp],
    paper_row: none,
    escape_hatch: none,
}
