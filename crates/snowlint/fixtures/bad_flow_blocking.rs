//! Known-bad fixture: a protocol that declares non-blocking reads but
//! parks requests server-side — the read arm stashes the client pid
//! and a drain helper replies to the *stored* pid once the version is
//! ready. Never compiled — lexed by `tests/fixtures.rs` as
//! `crates/protocols/src/bad_flow_blocking.rs`; `flow-blocking` must
//! fire on the deferred reply site inside the drain helper.

pub enum Msg {
    InvokeRot { id: u64 },
    Read { id: u64 },
    ReadResp { id: u64, vals: Vec<u64> },
}

pub struct BadFlowBlockingNode;

impl ProtocolNode for BadFlowBlockingNode {
    const NAME: &'static str = "BAD-FLOW-BLOCKING";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id } => {
                    ctx.send(c.topo.primary(id), Msg::Read { id });
                }
                Msg::ReadResp { id, .. } => {
                    c.completed.insert(id);
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::Read { id } => {
                    s.waiting.push(Pending { id, client: env.from });
                    drain_ready(s, ctx);
                }
                _ => {}
            }
        }
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadResp { .. } => 1,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::Read { .. })
    }
}

/// Re-drive parked reads whose snapshot became stable. Replying to a
/// stored pid instead of `env.from` is exactly what snowflow calls
/// blocking: the response can be deferred past the activation.
fn drain_ready(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
    let mut still = Vec::new();
    for r in s.waiting.drain(..) {
        if s.store.stable(r.id) {
            ctx.send(r.client, Msg::ReadResp { id: r.id, vals: s.store.read(r.id) }); // line: deferred-reply
        } else {
            still.push(r);
        }
    }
    s.waiting = still;
}

crate::snow_properties! { // line: decl
    system: "BAD-FLOW-BLOCKING",
    consistency: Causal,
    rounds: 1,
    values: 1,
    nonblocking: true,
    write_tx: false,
    requests: [Read],
    value_replies: [ReadResp],
    paper_row: none,
    escape_hatch: none,
}
