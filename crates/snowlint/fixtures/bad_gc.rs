//! Known-bad clone of the model crate's checker GC: drops the module's
//! `#![deny(unsafe_code)]` guard and commits every sin a frontier-GC
//! refactor is tempted by — wall-clock-triggered collection (the exact
//! nondeterminism the soak's replay digest exists to catch), a hash
//! map for the retired index, and an unsafe arena compaction. Lexed by
//! the fixture tests under the path `crates/model/src/incremental.rs`;
//! never compiled.

use std::collections::HashMap; // line: hash
use std::time::Instant;

pub struct FrontierGc {
    retired: HashMap<u64, u32>, // line: hash-field
    arena: Vec<u32>,
    last_gc: Option<Instant>,
}

impl FrontierGc {
    pub fn maybe_gc(&mut self, cut: usize) -> usize {
        // Real time deciding GC timing makes retirement counts differ
        // between bit-identical replays.
        let now = Instant::now(); // line: clock
        if self.last_gc.is_some_and(|t| now.duration_since(t).as_millis() < 5) {
            return 0;
        }
        self.last_gc = Some(now);
        let src = self.arena[cut..].as_ptr();
        unsafe { std::ptr::copy(src, self.arena.as_mut_ptr(), self.arena.len() - cut) } // line: unsafe
        self.arena.truncate(self.arena.len() - cut);
        cut
    }
}
