//! Known-bad clone of the sim crate's flight slab: drops the module's
//! `#![deny(unsafe_code)]` guard and commits every determinism sin the
//! slab/calendar refactor was tempted by. Lexed by the fixture tests
//! under the path `crates/sim/src/slab.rs`; never compiled.

use std::collections::HashMap; // line: hash
use std::time::Instant;

pub struct FlightSlab<V> {
    slots: HashMap<u32, V>, // line: hash-field
    touched_at: u64,
}

impl<V> FlightSlab<V> {
    pub fn insert(&mut self, id: u32, value: V) -> u32 {
        self.touched_at = Instant::now().elapsed().as_nanos() as u64; // line: clock
        self.slots.insert(id, value);
        id
    }

    pub fn get_fast(&self, id: u32) -> Option<&V> {
        unsafe { self.slots.get(&id).map(|v| &*(v as *const V)) } // line: unsafe
    }
}
