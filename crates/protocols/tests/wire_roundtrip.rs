//! Wire-codec property tests: encode∘decode is the identity for every
//! variant of every protocol `Msg` alphabet, and malformed buffers —
//! strict prefixes of valid encodings, arbitrary garbage — must return
//! `Err`, never panic. These are the guarantees cbf-net's framing layer
//! leans on when it feeds socket bytes into `Wire::from_bytes`.
//!
//! The `Msg` enums deliberately do not implement `PartialEq` (they are
//! protocol alphabets, not values), so identity is checked on `Debug`
//! renderings, which print every field of every variant.

use cbf_model::{Key, TxId, Value};
use cbf_protocols::common::Wire;
use cbf_protocols::{cops, cops_snow, eiger, spanner};
use cbf_sim::ProcessId;
use proptest::prelude::*;

const CASES: u32 = if cfg!(debug_assertions) { 64 } else { 256 };

fn key() -> impl Strategy<Value = Key> {
    any::<u32>().prop_map(Key)
}
fn value() -> impl Strategy<Value = Value> {
    any::<u64>().prop_map(Value)
}
fn txid() -> impl Strategy<Value = TxId> {
    any::<u64>().prop_map(TxId)
}
fn pid() -> impl Strategy<Value = ProcessId> {
    any::<u32>().prop_map(ProcessId)
}
fn keys() -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(key(), 0..6)
}
fn writes() -> impl Strategy<Value = Vec<(Key, Value)>> {
    prop::collection::vec((key(), value()), 0..6)
}
fn deps() -> impl Strategy<Value = Vec<(Key, u64)>> {
    prop::collection::vec((key(), any::<u64>()), 0..6)
}

fn cops_msg() -> impl Strategy<Value = cops::Msg> {
    let item =
        (key(), value(), any::<u64>(), deps()).prop_map(|(key, value, ts, deps)| cops::Item {
            key,
            value,
            ts,
            deps,
        });
    prop_oneof![
        (txid(), keys()).prop_map(|(id, keys)| cops::Msg::InvokeRot { id, keys }),
        (txid(), writes()).prop_map(|(id, writes)| cops::Msg::InvokeWtx { id, writes }),
        (txid(), key(), value(), deps()).prop_map(|(id, key, value, deps)| cops::Msg::PutReq {
            id,
            key,
            value,
            deps
        }),
        (txid(), key(), any::<u64>()).prop_map(|(id, key, ts)| cops::Msg::PutAck { id, key, ts }),
        (txid(), keys()).prop_map(|(id, keys)| cops::Msg::GetReq { id, keys }),
        (txid(), prop::collection::vec(item, 0..4))
            .prop_map(|(id, items)| cops::Msg::GetResp { id, items }),
        (txid(), key(), any::<u64>()).prop_map(|(id, key, ts)| cops::Msg::GetExactReq {
            id,
            key,
            ts
        }),
        (txid(), key(), value(), any::<u64>())
            .prop_map(|(id, key, value, ts)| cops::Msg::GetExactResp { id, key, value, ts }),
        (txid(), any::<u32>()).prop_map(|(id, attempt)| cops::Msg::RetryTick { id, attempt }),
    ]
}

fn cops_snow_msg() -> impl Strategy<Value = cops_snow::Msg> {
    prop_oneof![
        (txid(), keys()).prop_map(|(id, keys)| cops_snow::Msg::InvokeRot { id, keys }),
        (txid(), writes()).prop_map(|(id, writes)| cops_snow::Msg::InvokeWtx { id, writes }),
        (txid(), keys()).prop_map(|(id, keys)| cops_snow::Msg::RotReq { id, keys }),
        (
            txid(),
            prop::collection::vec((key(), value(), any::<u64>()), 0..6)
        )
            .prop_map(|(id, reads)| cops_snow::Msg::RotResp { id, reads }),
        (txid(), key(), value(), deps()).prop_map(|(id, key, value, deps)| {
            cops_snow::Msg::PutReq {
                id,
                key,
                value,
                deps,
            }
        }),
        (txid(), deps()).prop_map(|(put, deps)| cops_snow::Msg::OldReaderQuery { put, deps }),
        (txid(), prop::collection::vec(txid(), 0..6))
            .prop_map(|(put, readers)| cops_snow::Msg::OldReaderResp { put, readers }),
        (txid(), key(), any::<u64>()).prop_map(|(id, key, ts)| cops_snow::Msg::PutAck {
            id,
            key,
            ts
        }),
        (txid(), any::<u32>()).prop_map(|(id, attempt)| cops_snow::Msg::RetryTick { id, attempt }),
    ]
}

fn items() -> impl Strategy<Value = Vec<(Key, Value, u64)>> {
    prop::collection::vec((key(), value(), any::<u64>()), 0..6)
}

fn maybe_ts() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn eiger_msg() -> impl Strategy<Value = eiger::Msg> {
    let pending =
        (txid(), any::<u64>(), pid(), writes()).prop_map(|(tx, proposed, coordinator, writes)| {
            eiger::PendingInfo {
                tx,
                proposed,
                coordinator,
                writes,
            }
        });
    prop_oneof![
        (txid(), keys()).prop_map(|(id, keys)| eiger::Msg::InvokeRot { id, keys }),
        (txid(), writes()).prop_map(|(id, writes)| eiger::Msg::InvokeWtx { id, writes }),
        (txid(), writes(), any::<u64>()).prop_map(|(id, writes, dep_ts)| eiger::Msg::WtxReq {
            id,
            writes,
            dep_ts
        }),
        (txid(), writes(), any::<u64>(), pid()).prop_map(|(id, writes, dep_ts, coordinator)| {
            eiger::Msg::Prepare {
                id,
                writes,
                dep_ts,
                coordinator,
            }
        }),
        (txid(), any::<u64>()).prop_map(|(id, proposed)| eiger::Msg::PrepareResp { id, proposed }),
        (txid(), any::<u64>()).prop_map(|(id, ts)| eiger::Msg::Commit { id, ts }),
        (txid(), any::<u64>()).prop_map(|(id, ts)| eiger::Msg::WtxAck { id, ts }),
        (txid(), keys()).prop_map(|(id, keys)| eiger::Msg::Read1 { id, keys }),
        (txid(), items(), any::<u64>(), any::<u64>()).prop_map(
            |(id, items, promise, min_pending)| eiger::Msg::Read1Resp {
                id,
                items,
                promise,
                min_pending,
            }
        ),
        (txid(), keys(), any::<u64>()).prop_map(|(id, keys, t)| eiger::Msg::Read2 { id, keys, t }),
        (txid(), items(), prop::collection::vec(pending, 0..4)).prop_map(
            |(id, items, pendings)| eiger::Msg::Read2Resp {
                id,
                items,
                pendings
            }
        ),
        (txid(), prop::collection::vec(txid(), 0..6))
            .prop_map(|(id, txs)| eiger::Msg::CheckTx { id, txs }),
        (txid(), prop::collection::vec((txid(), maybe_ts()), 0..6))
            .prop_map(|(id, decisions)| eiger::Msg::CheckResp { id, decisions }),
        (txid(), any::<u32>()).prop_map(|(id, attempt)| eiger::Msg::RetryTick { id, attempt }),
    ]
}

fn spanner_msg() -> impl Strategy<Value = spanner::Msg> {
    prop_oneof![
        (txid(), keys()).prop_map(|(id, keys)| spanner::Msg::InvokeRot { id, keys }),
        (txid(), writes()).prop_map(|(id, writes)| spanner::Msg::InvokeWtx { id, writes }),
        (txid(), keys(), any::<u64>()).prop_map(|(id, keys, at)| spanner::Msg::ReadAt {
            id,
            keys,
            at
        }),
        (
            txid(),
            prop::collection::vec((key(), value(), any::<u64>()), 0..6)
        )
            .prop_map(|(id, reads)| spanner::Msg::ReadAtResp { id, reads }),
        (txid(), writes()).prop_map(|(id, writes)| spanner::Msg::WtxReq { id, writes }),
        (txid(), writes(), pid()).prop_map(|(id, writes, coordinator)| spanner::Msg::Prepare {
            id,
            writes,
            coordinator
        }),
        (txid(), any::<u64>()).prop_map(|(id, ts)| spanner::Msg::PrepareResp { id, ts }),
        (txid(), any::<u64>()).prop_map(|(id, ts)| spanner::Msg::Commit { id, ts }),
        txid().prop_map(|id| spanner::Msg::CommitAck { id }),
        (txid(), any::<u64>()).prop_map(|(id, ts)| spanner::Msg::WtxAck { id, ts }),
        Just(spanner::Msg::Poll),
        (txid(), any::<u32>()).prop_map(|(id, attempt)| spanner::Msg::RetryTick { id, attempt }),
    ]
}

/// Identity: decode(encode(m)) must reproduce every field (checked via
/// Debug, which prints them all). Also: every *strict prefix* of the
/// encoding must fail — each encoded byte is load-bearing.
fn roundtrip_and_truncate<M: Wire + std::fmt::Debug>(msg: &M) -> Result<(), TestCaseError> {
    let bytes = msg.to_bytes();
    let back = M::from_bytes(&bytes);
    match back {
        Ok(ref b) => prop_assert_eq!(format!("{:?}", msg), format!("{:?}", b)),
        Err(ref e) => prop_assert!(false, "decode failed: {e:?} for {msg:?}"),
    }
    for cut in 0..bytes.len() {
        prop_assert!(
            M::from_bytes(&bytes[..cut]).is_err(),
            "strict prefix of {cut}/{} bytes decoded for {msg:?}",
            bytes.len()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn cops_roundtrip(msg in cops_msg()) {
        roundtrip_and_truncate(&msg)?;
    }

    #[test]
    fn cops_snow_roundtrip(msg in cops_snow_msg()) {
        roundtrip_and_truncate(&msg)?;
    }

    #[test]
    fn eiger_roundtrip(msg in eiger_msg()) {
        roundtrip_and_truncate(&msg)?;
    }

    #[test]
    fn spanner_roundtrip(msg in spanner_msg()) {
        roundtrip_and_truncate(&msg)?;
    }

    /// Arbitrary garbage must decode to Ok or Err — never panic, never
    /// allocate absurdly. (Running the decoder at all is the assertion;
    /// proptest catches panics.)
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = cops::Msg::from_bytes(&bytes);
        let _ = cops_snow::Msg::from_bytes(&bytes);
        let _ = eiger::Msg::from_bytes(&bytes);
        let _ = spanner::Msg::from_bytes(&bytes);
    }
}
