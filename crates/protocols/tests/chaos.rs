//! Chaos tests: the nemesis drops, duplicates, partitions and crashes,
//! and the protocols must still complete every client transaction (via
//! timeout/retry) with a history that passes the causal checker.
//!
//! Every fault schedule is a seeded [`FaultPlan`], so any failure here
//! replays bit-identically from the seed in the panic message.

use cbf_model::{check_causal_legacy, ClientId, Key};
use cbf_protocols::cops::CopsNode;
use cbf_protocols::cops_snow::CopsSnowNode;
use cbf_protocols::eiger::EigerNode;
use cbf_protocols::spanner::SpannerNode;
use cbf_protocols::{Cluster, ProtocolNode, Topology};
use cbf_sim::{FaultPlan, LatencyModel, ProcessId, SimConfig, MICROS, MILLIS};

/// Keep debug-profile runs quick; `--release` sweeps more seeds.
const SEEDS: &[u64] = if cfg!(debug_assertions) {
    &[1, 7]
} else {
    &[1, 7, 13, 29, 71]
};

/// A deployment with retries enabled and the given fault schedule.
fn chaos_cluster<N: ProtocolNode>(plan: FaultPlan) -> Cluster<N> {
    Cluster::with_network(
        Topology::minimal(4).with_retry(MILLIS),
        LatencyModel::constant_default(),
        SimConfig {
            fault: Some(plan),
            ..SimConfig::default()
        },
    )
}

/// Mixed workload: every client writes and reads across both objects.
/// All transactions must complete — retry rides out the faults — and the
/// observed history must stay causally consistent.
fn run_workload<N: ProtocolNode>(c: &mut Cluster<N>, label: &str) {
    for round in 0..5u32 {
        for cl in 0..4u32 {
            let key = Key((round + cl) % 2);
            c.write_tx_auto(ClientId(cl), &[key])
                .unwrap_or_else(|e| panic!("{label}: write round {round} client {cl}: {e:?}"));
            c.read_tx(ClientId((cl + 1) % 4), &[Key(0), Key(1)])
                .unwrap_or_else(|e| panic!("{label}: read round {round} client {cl}: {e:?}"));
        }
    }
    let v = c.check();
    assert!(v.is_ok(), "{label}: causal violations: {:?}", v.violations);
    // Differential rider: `Cluster::check` runs the incremental checker;
    // on every recorded chaos history its verdict must be bit-identical
    // to the legacy dense-closure oracle's.
    let legacy = check_causal_legacy(c.history());
    assert_eq!(
        v, legacy,
        "{label}: incremental verdict diverged from legacy"
    );
}

/// Message loss and duplication at 3% each.
fn drops_and_dups<N: ProtocolNode>() {
    for &seed in SEEDS {
        let plan = FaultPlan::new(seed).with_drops(30).with_dups(30);
        let mut c = chaos_cluster::<N>(plan);
        run_workload(&mut c, &format!("{} drops+dups seed {seed}", N::NAME));
    }
}

/// The acceptance scenario: drops and duplicates plus one server crash
/// with volatile-state loss, recovering mid-workload.
fn crash_recover<N: ProtocolNode>() {
    for &seed in SEEDS {
        let plan = FaultPlan::new(seed)
            .with_drops(20)
            .with_dups(20)
            .with_crash(ProcessId(1), 2 * MILLIS, 8 * MILLIS, true);
        let mut c = chaos_cluster::<N>(plan);
        run_workload(&mut c, &format!("{} crash+chaos seed {seed}", N::NAME));
    }
}

/// A client↔server partition that heals: the transaction stalls — its
/// retries pile up on the frozen link — then the heal floods the server
/// with duplicates, which the request dedup must collapse to one apply.
fn partition_heals<N: ProtocolNode>() {
    let heal = 3 * MILLIS;
    let plan = FaultPlan::new(5).with_partition(ProcessId(0), ProcessId(2), 100 * MICROS, heal);
    let mut c = chaos_cluster::<N>(plan);
    let label = format!("{} partition", N::NAME);
    // Client 0 (pid 2) writes to key 0 (primary: server 0, pid 0): cut.
    let w = c
        .write_tx_auto(ClientId(0), &[Key(0)])
        .unwrap_or_else(|e| panic!("{label}: write across partition: {e:?}"));
    assert!(
        w.audit.latency >= heal - 100 * MICROS,
        "{label}: completed before the heal? latency {}",
        w.audit.latency
    );
    // Post-heal traffic must see a consistent store.
    run_workload(&mut c, &label);
}

#[test]
fn cops_survives_drops_and_dups() {
    drops_and_dups::<CopsNode>();
}

#[test]
fn cops_snow_survives_drops_and_dups() {
    drops_and_dups::<CopsSnowNode>();
}

#[test]
fn eiger_survives_drops_and_dups() {
    drops_and_dups::<EigerNode>();
}

#[test]
fn spanner_survives_drops_and_dups() {
    drops_and_dups::<SpannerNode>();
}

#[test]
fn cops_survives_crash_recover() {
    crash_recover::<CopsNode>();
}

#[test]
fn cops_snow_survives_crash_recover() {
    crash_recover::<CopsSnowNode>();
}

#[test]
fn eiger_survives_crash_recover() {
    crash_recover::<EigerNode>();
}

#[test]
fn spanner_survives_crash_recover() {
    crash_recover::<SpannerNode>();
}

#[test]
fn cops_survives_partition_heal() {
    partition_heals::<CopsNode>();
}

#[test]
fn cops_snow_survives_partition_heal() {
    partition_heals::<CopsSnowNode>();
}

#[test]
fn eiger_survives_partition_heal() {
    partition_heals::<EigerNode>();
}

#[test]
fn spanner_survives_partition_heal() {
    partition_heals::<SpannerNode>();
}

/// The same seed replays the same chaos: two identical runs produce
/// identical trace digests, so any chaos failure is reproducible.
#[test]
fn chaos_replays_bit_identically() {
    fn digest_of(seed: u64) -> u64 {
        let plan = FaultPlan::new(seed)
            .with_drops(40)
            .with_dups(40)
            .with_crash(ProcessId(0), MILLIS, 4 * MILLIS, true);
        let mut c = chaos_cluster::<CopsNode>(plan);
        run_workload(&mut c, &format!("replay seed {seed}"));
        c.world.trace.digest()
    }
    for seed in [3, 11, 42] {
        assert_eq!(digest_of(seed), digest_of(seed), "seed {seed} diverged");
    }
}
