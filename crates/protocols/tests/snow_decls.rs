//! Runtime cross-check of every module's `snow_properties!` declaration
//! against the `ProtocolNode` associated consts it claims to describe.
//! (The static half of this check — message enums, handler signatures,
//! Table 1 bounds — lives in `snowlint`.)

use cbf_protocols::{all_snow_decls, ProtocolNode, SnowDecl};

/// Pair a declaration with the node type it describes.
fn decl_matches_node<N: ProtocolNode>(decl: &SnowDecl) {
    assert_eq!(
        decl.system,
        N::NAME,
        "snow_properties! system must equal ProtocolNode::NAME"
    );
    assert_eq!(
        decl.consistency,
        N::CONSISTENCY,
        "{}: declared consistency diverges from ProtocolNode::CONSISTENCY",
        decl.system
    );
    assert_eq!(
        decl.write_tx,
        N::SUPPORTS_MULTI_WRITE,
        "{}: declared W diverges from ProtocolNode::SUPPORTS_MULTI_WRITE",
        decl.system
    );
}

#[test]
fn every_decl_matches_its_node_consts() {
    use cbf_protocols as p;
    decl_matches_node::<p::calvin::CalvinNode>(&p::calvin::SNOW_DECL);
    decl_matches_node::<p::contrarian::ContrarianNode>(&p::contrarian::SNOW_DECL);
    decl_matches_node::<p::cops::CopsNode>(&p::cops::SNOW_DECL);
    decl_matches_node::<p::cops_rw::CopsRwNode>(&p::cops_rw::SNOW_DECL);
    decl_matches_node::<p::cops_snow::CopsSnowNode>(&p::cops_snow::SNOW_DECL);
    decl_matches_node::<p::cure::CureNode>(&p::cure::SNOW_DECL);
    decl_matches_node::<p::eiger::EigerNode>(&p::eiger::SNOW_DECL);
    decl_matches_node::<p::gentlerain::GentleRainNode>(&p::gentlerain::SNOW_DECL);
    decl_matches_node::<p::occult::OccultNode>(&p::occult::SNOW_DECL);
    decl_matches_node::<p::pinned::PinnedNode>(&p::pinned::SNOW_DECL);
    decl_matches_node::<p::ramp::RampNode>(&p::ramp::SNOW_DECL);
    decl_matches_node::<p::spanner::SpannerNode>(&p::spanner::SNOW_DECL);
    decl_matches_node::<p::wren::WrenNode>(&p::wren::SNOW_DECL);
    // The naive family shares one declaration across its claimant node
    // types; NAME varies per phase count, so only the property halves
    // are comparable.
    let naive = &p::naive::SNOW_DECL;
    assert_eq!(
        naive.consistency,
        <p::NaiveFast as ProtocolNode>::CONSISTENCY
    );
    assert_eq!(
        naive.write_tx,
        <p::NaiveFast as ProtocolNode>::SUPPORTS_MULTI_WRITE
    );
}

#[test]
fn registry_is_complete_and_unique() {
    let decls = all_snow_decls();
    assert_eq!(decls.len(), 14, "one declaration per protocol module");
    let mut names: Vec<&str> = decls.iter().map(|d| d.system).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 14, "system names must be unique");
}

#[test]
fn impossible_claims_carry_an_escape_hatch() {
    for d in all_snow_decls() {
        if d.claims_the_impossible() {
            assert!(
                d.escape_hatch.is_some(),
                "{} claims fast + W + causal without an escape hatch — \
                 Theorem 1 says this combination cannot exist",
                d.system
            );
        }
    }
}

#[test]
fn request_and_reply_vocabularies_are_nonempty() {
    for d in all_snow_decls() {
        assert!(!d.requests.is_empty(), "{}: no request variants", d.system);
        assert!(
            !d.value_replies.is_empty(),
            "{}: no value-carrying replies",
            d.system
        );
    }
}
