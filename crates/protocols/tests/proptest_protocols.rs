//! Property tests: every causal protocol stays causally consistent under
//! proptest-generated transaction sequences, and the audits stay within
//! each design's declared envelope.

use cbf_model::{check_causal, check_read_atomicity, ClientId, Key};
use cbf_protocols::contrarian::ContrarianNode;
use cbf_protocols::cops::CopsNode;
use cbf_protocols::cops_rw::CopsRwNode;
use cbf_protocols::cops_snow::CopsSnowNode;
use cbf_protocols::eiger::EigerNode;
use cbf_protocols::ramp::RampNode;
use cbf_protocols::wren::WrenNode;
use cbf_protocols::{Cluster, ProtocolNode, Topology};
use proptest::prelude::*;

/// Keep debug-profile runs quick; `--release` gets the full sweep.
const CASES: u32 = if cfg!(debug_assertions) { 8 } else { 48 };

/// A generated operation against the two-object deployment.
#[derive(Clone, Debug)]
enum GenOp {
    Rot {
        client: u32,
    },
    Write {
        client: u32,
        key: u32,
    },
    MultiWrite {
        client: u32,
    },
    /// Let background machinery run (stabilization, in-flight traffic).
    Settle,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u32..4).prop_map(|client| GenOp::Rot { client }),
        (0u32..4, 0u32..2).prop_map(|(client, key)| GenOp::Write { client, key }),
        (0u32..4).prop_map(|client| GenOp::MultiWrite { client }),
        Just(GenOp::Settle),
    ]
}

fn run_ops<N: ProtocolNode>(ops: &[GenOp]) -> Cluster<N> {
    let mut c: Cluster<N> = Cluster::new(Topology::minimal(4));
    for op in ops {
        match *op {
            GenOp::Rot { client } => {
                c.read_tx(ClientId(client), &[Key(0), Key(1)]).expect("rot");
            }
            GenOp::Write { client, key } => {
                c.write_tx_auto(ClientId(client), &[Key(key)])
                    .expect("write");
            }
            GenOp::MultiWrite { client } => {
                if N::SUPPORTS_MULTI_WRITE {
                    c.write_tx_auto(ClientId(client), &[Key(0), Key(1)])
                        .expect("wtx");
                } else {
                    c.write_tx_auto(ClientId(client), &[Key(0)]).expect("w");
                }
            }
            GenOp::Settle => {
                c.world.run_for(cbf_sim::MILLIS);
            }
        }
    }
    c
}

fn causal_under<N: ProtocolNode>(ops: &[GenOp], chaos_seed: u64) -> Result<(), TestCaseError> {
    let mut c = run_ops::<N>(ops);
    prop_assert!(
        check_causal(c.history()).is_ok(),
        "{}: {:?}",
        N::NAME,
        check_causal(c.history()).violations
    );
    c.world.run_chaotic(chaos_seed, 300_000);
    prop_assert!(check_causal(c.history()).is_ok(), "{} post-chaos", N::NAME);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn wren_is_causal(ops in prop::collection::vec(op_strategy(), 1..14), seed in any::<u64>()) {
        causal_under::<WrenNode>(&ops, seed)?;
    }

    #[test]
    fn eiger_is_causal(ops in prop::collection::vec(op_strategy(), 1..14), seed in any::<u64>()) {
        causal_under::<EigerNode>(&ops, seed)?;
    }

    #[test]
    fn cops_is_causal(ops in prop::collection::vec(op_strategy(), 1..14), seed in any::<u64>()) {
        causal_under::<CopsNode>(&ops, seed)?;
    }

    #[test]
    fn cops_snow_is_causal_and_fast(
        ops in prop::collection::vec(op_strategy(), 1..14),
        seed in any::<u64>()
    ) {
        let mut c = run_ops::<CopsSnowNode>(&ops);
        prop_assert!(check_causal(c.history()).is_ok());
        // Every ROT in the run was fast (Definition 4).
        prop_assert!(c.profile().rot_count == 0 || c.profile().fast_rots(),
            "profile: {:?}", c.profile());
        c.world.run_chaotic(seed, 300_000);
        prop_assert!(check_causal(c.history()).is_ok());
    }

    #[test]
    fn cops_rw_is_causal(ops in prop::collection::vec(op_strategy(), 1..14), seed in any::<u64>()) {
        causal_under::<CopsRwNode>(&ops, seed)?;
    }

    #[test]
    fn contrarian_is_causal(ops in prop::collection::vec(op_strategy(), 1..14), seed in any::<u64>()) {
        causal_under::<ContrarianNode>(&ops, seed)?;
    }

    #[test]
    fn ramp_is_read_atomic(ops in prop::collection::vec(op_strategy(), 1..14)) {
        let c = run_ops::<RampNode>(&ops);
        prop_assert!(
            check_read_atomicity(c.history()).is_empty(),
            "fractured reads: {:?}",
            check_read_atomicity(c.history())
        );
    }

    /// The audits stay within each protocol's declared envelope.
    #[test]
    fn audit_envelopes(ops in prop::collection::vec(op_strategy(), 1..12)) {
        let c = run_ops::<CopsSnowNode>(&ops);
        prop_assert!(c.profile().max_rounds <= 1);
        let c = run_ops::<CopsNode>(&ops);
        prop_assert!(c.profile().max_rounds <= 2);
        let c = run_ops::<EigerNode>(&ops);
        prop_assert!(c.profile().max_rounds <= 3);
        prop_assert!(!c.profile().any_blocking);
        let c = run_ops::<WrenNode>(&ops);
        prop_assert!(c.profile().max_rounds <= 2);
        prop_assert!(c.profile().max_values <= 1);
    }
}
