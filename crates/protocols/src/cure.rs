//! Cure [Akkoorath et al., ICDCS 2016]: causal consistency with
//! multi-object write transactions and snapshot reads that may **block**
//! behind stabilization.
//!
//! Table 1 row: R = 2, V = 1, blocking, W, causal consistency.
//!
//! Cure completes the causal design space's W column: like Wren it runs
//! two-phase write transactions above a stabilized snapshot, and like
//! GentleRain it has no client-side write cache — a client's snapshot
//! floor (its own commits and reads) can run ahead of the global stable
//! time, in which case the serving replica **parks the read** until
//! stabilization catches up. Wren's contribution (DSN 2018) was exactly
//! the removal of this blocking; running the two side by side quantifies
//! it. (Real Cure uses per-datacenter vector clocks; the scalar stable
//! time here preserves the blocking-vs-freshness behaviour the theorem
//! cares about, per DESIGN.md's substitution rules.)

use crate::common::{Completed, HybridClock, MvStore, ProtocolNode, Topology, Version};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId, Time, MILLIS};
use std::collections::HashMap;

/// Stabilization broadcast period (tunable via `Topology::tuning`).
pub const STABLE_PERIOD: Time = MILLIS;

/// Cure message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Timer: broadcast my local stable time.
    StableTick,
    /// Server → server: my local stable time.
    LstBcast { lst: u64 },
    /// Client → any server: current global stable time?
    GstReq { id: TxId },
    /// Server → client: the GST.
    GstResp { id: TxId, gst: u64 },
    /// Client → server: read keys at snapshot `at` (parks if unstable).
    ReadAt { id: TxId, keys: Vec<Key>, at: u64 },
    /// Server → client: one value per key.
    ReadAtResp {
        id: TxId,
        reads: Vec<(Key, Value, u64)>,
    },
    /// Client → coordinator: run this write-only transaction.
    WtxReq {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
    },
    /// Coordinator → participant: propose and hold.
    Prepare {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
        coordinator: ProcessId,
    },
    /// Participant → coordinator: proposal.
    PrepareResp { id: TxId, proposed: u64 },
    /// Coordinator → participant: commit at `ts`.
    Commit { id: TxId, ts: u64 },
    /// Coordinator → client: committed at `ts`.
    WtxAck { id: TxId, ts: u64 },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    got: HashMap<Key, (Value, u64)>,
    awaiting: usize,
    invoked_at: u64,
}

/// A read parked at a server until stabilization reaches `at`.
#[derive(Clone, Debug)]
struct ParkedRead {
    client: ProcessId,
    id: TxId,
    keys: Vec<Key>,
    at: u64,
}

/// Cure client: snapshot floor, no write cache.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Highest commit/read timestamp observed.
    dep_ts: u64,
    last_snapshot: u64,
    rots: HashMap<TxId, PendingRot>,
    wtxs: HashMap<TxId, u64>,
    completed: HashMap<TxId, Completed>,
}

/// Coordinator-side 2PC state.
#[derive(Clone, Debug)]
struct CoordTx {
    client: ProcessId,
    participants: Vec<ProcessId>,
    proposals: Vec<u64>,
    awaiting: usize,
}

/// Cure server: Wren's pending-aware stabilization plus GentleRain's
/// parked reads.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    clock: HybridClock,
    pending: HashMap<TxId, (u64, Vec<(Key, Value)>)>,
    coordinating: HashMap<TxId, CoordTx>,
    known_lst: Vec<u64>,
    me: ProcessId,
    period: Time,
    parked: Vec<ParkedRead>,
}

impl ServerState {
    fn lst(&mut self, now: Time) -> u64 {
        let min_pending = self.pending.values().map(|&(p, _)| p).min();
        match min_pending {
            Some(p) => p - 1,
            None => self.clock.tick(now),
        }
    }

    fn gst(&self) -> u64 {
        self.known_lst.iter().copied().min().unwrap_or(0)
    }

    fn refresh_own_lst(&mut self, now: Time) -> u64 {
        let lst = self.lst(now);
        let my = self.me.index();
        self.known_lst[my] = self.known_lst[my].max(lst);
        lst
    }

    fn serve(&self, keys: &[Key], at: u64) -> Vec<(Key, Value, u64)> {
        keys.iter()
            .map(|&k| match self.store.latest_at(k, at) {
                Some(v) => (k, v.value, v.ts),
                None => (k, Value::BOTTOM, 0),
            })
            .collect()
    }

    fn drain_parked(&mut self, ctx: &mut Ctx<Msg>) {
        let gst = self.gst();
        let (ready, still): (Vec<ParkedRead>, Vec<ParkedRead>) = std::mem::take(&mut self.parked)
            .into_iter()
            .partition(|r| r.at <= gst);
        self.parked = still;
        for r in ready {
            let reads = self.serve(&r.keys, r.at);
            ctx.send(r.client, Msg::ReadAtResp { id: r.id, reads });
        }
    }
}

/// A Cure node.
#[derive(Clone, Debug)]
pub enum CureNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl CureNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let server = c.topo.primary(keys[0]);
                    ctx.send(server, Msg::GstReq { id });
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            got: HashMap::new(),
                            awaiting: 0,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::GstResp { id, gst } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    // RYW + monotonic reads without a cache: the floor
                    // includes the client's own commits — the server
                    // parks until that is stable (the blocking).
                    let at = gst.max(c.dep_ts).max(c.last_snapshot);
                    c.last_snapshot = at;
                    let groups = c.topo.group_by_primary(&p.keys);
                    p.awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::ReadAt { id, keys: ks, at });
                    }
                }
                Msg::ReadAtResp { id, reads } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    for (k, v, ts) in reads {
                        c.dep_ts = c.dep_ts.max(ts);
                        p.got.insert(k, (v, ts));
                    }
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        let Some(p) = c.rots.remove(&id) else {
                            continue;
                        };
                        let reads = p
                            .keys
                            .iter()
                            .map(|&k| (k, p.got.get(&k).map_or(Value::BOTTOM, |&(v, _)| v)))
                            .collect();
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads,
                                invoked_at: p.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let coordinator = c.topo.primary(writes[0].0);
                    ctx.send(
                        coordinator,
                        Msg::WtxReq {
                            id,
                            writes,
                            dep_ts: c.dep_ts,
                        },
                    );
                    c.wtxs.insert(id, ctx.now());
                }
                Msg::WtxAck { id, ts } => {
                    if let Some(invoked_at) = c.wtxs.remove(&id) {
                        c.dep_ts = c.dep_ts.max(ts);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::StableTick => {
                    let lst = s.refresh_own_lst(ctx.now());
                    for srv in s.topo.servers() {
                        if srv != s.me {
                            ctx.send(srv, Msg::LstBcast { lst });
                        }
                    }
                    ctx.set_timer(s.period, Msg::StableTick);
                    s.drain_parked(ctx);
                }
                Msg::LstBcast { lst } => {
                    let idx = env.from.index();
                    s.known_lst[idx] = s.known_lst[idx].max(lst);
                    s.drain_parked(ctx);
                }
                Msg::GstReq { id } => {
                    s.refresh_own_lst(ctx.now());
                    ctx.send(env.from, Msg::GstResp { id, gst: s.gst() });
                }
                Msg::ReadAt { id, keys, at } => {
                    s.refresh_own_lst(ctx.now());
                    if at <= s.gst() {
                        let reads = s.serve(&keys, at);
                        ctx.send(env.from, Msg::ReadAtResp { id, reads });
                    } else {
                        s.parked.push(ParkedRead {
                            client: env.from,
                            id,
                            keys,
                            at,
                        });
                    }
                }
                Msg::WtxReq { id, writes, dep_ts } => {
                    s.clock.witness(dep_ts);
                    let mut per_server: std::collections::BTreeMap<ProcessId, Vec<(Key, Value)>> =
                        Default::default();
                    for &(k, v) in &writes {
                        per_server
                            .entry(s.topo.primary(k))
                            .or_default()
                            .push((k, v));
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    s.coordinating.insert(
                        id,
                        CoordTx {
                            client: env.from,
                            participants: participants.clone(),
                            proposals: Vec::new(),
                            awaiting: participants.len(),
                        },
                    );
                    let me = ctx.me();
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Prepare {
                                id,
                                writes: ws,
                                dep_ts,
                                coordinator: me,
                            },
                        );
                    }
                }
                Msg::Prepare {
                    id,
                    writes,
                    dep_ts,
                    coordinator,
                } => {
                    s.clock.witness(dep_ts);
                    let proposed = s.clock.tick(ctx.now());
                    s.pending.insert(id, (proposed, writes));
                    ctx.send(coordinator, Msg::PrepareResp { id, proposed });
                }
                Msg::PrepareResp { id, proposed } => {
                    let finished = {
                        let Some(co) = s.coordinating.get_mut(&id) else {
                            continue;
                        };
                        co.proposals.push(proposed);
                        co.awaiting -= 1;
                        co.awaiting == 0
                    };
                    if finished {
                        let Some(co) = s.coordinating.remove(&id) else {
                            continue;
                        };
                        let ts = co.proposals.iter().copied().max().unwrap_or(0);
                        s.clock.witness(ts);
                        for part in &co.participants {
                            ctx.send(*part, Msg::Commit { id, ts });
                        }
                        ctx.send(co.client, Msg::WtxAck { id, ts });
                    }
                }
                Msg::Commit { id, ts } => {
                    if let Some((_, writes)) = s.pending.remove(&id) {
                        s.clock.witness(ts);
                        for (k, v) in writes {
                            s.store.insert(
                                k,
                                Version {
                                    value: v,
                                    ts,
                                    tx: id,
                                },
                            );
                        }
                        s.drain_parked(ctx);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for CureNode {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        if let CureNode::Server(s) = self {
            ctx.set_timer(s.period, Msg::StableTick);
        }
    }

    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            CureNode::Client(c) => Self::client_step(c, ctx),
            CureNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for CureNode {
    const NAME: &'static str = "Cure";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        CureNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            clock: HybridClock::new(id.0 as u8),
            pending: HashMap::new(),
            coordinating: HashMap::new(),
            known_lst: vec![0; topo.num_servers as usize],
            me: id,
            period: if topo.tuning > 0 {
                topo.tuning
            } else {
                STABLE_PERIOD
            },
            parked: Vec::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        CureNode::Client(ClientState {
            topo: topo.clone(),
            dep_ts: 0,
            last_snapshot: 0,
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            CureNode::Client(c) => c.completed.get(&id),
            CureNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            CureNode::Client(c) => c.completed.remove(&id),
            CureNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadAtResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::GstReq { .. } | Msg::ReadAt { .. } | Msg::WtxReq { .. }
        )
    }
}

crate::snow_properties! {
    system: "Cure",
    consistency: Causal,
    rounds: 2,
    values: 1,
    nonblocking: false,
    write_tx: true,
    requests: [GstReq, ReadAt, WtxReq],
    value_replies: [ReadAtResp],
    paper_row: "Cure",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::{check_read_atomicity, check_read_your_writes, ClientId};

    fn minimal() -> Cluster<CureNode> {
        Cluster::new(Topology::minimal(4))
    }

    fn stabilize(c: &mut Cluster<CureNode>) {
        c.world.run_for(5 * STABLE_PERIOD);
    }

    #[test]
    fn write_tx_then_stable_read() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        stabilize(&mut c);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.audit.rounds, 2);
        assert!(r.audit.max_values_per_msg <= 1);
        assert!(c.check().is_ok());
    }

    #[test]
    fn write_then_read_blocks_like_gentlerain() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(2), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(2), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1, "RYW via blocking");
        assert!(r.audit.blocked, "audit: {:?}", r.audit);
        assert!(check_read_your_writes(c.history()).is_empty());
    }

    #[test]
    fn snapshots_never_fracture_write_txs() {
        for seed in 0..5u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
                if i % 3 == 0 {
                    c.world.run_for(STABLE_PERIOD);
                }
            }
            c.world.run_chaotic(seed, 200_000);
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
            assert!(check_read_atomicity(c.history()).is_empty());
        }
    }

    #[test]
    fn profile_matches_the_table_row() {
        let mut c = minimal();
        for i in 0..6u32 {
            c.write_tx_auto(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert_eq!(p.max_rounds, 2);
        assert!(p.max_values <= 1);
        assert!(p.any_blocking, "profile: {p:?}");
        assert!(p.multi_write_supported);
        assert!(c.check().is_ok());
    }
}
