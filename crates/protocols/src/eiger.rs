//! Eiger [Lloyd et al., NSDI 2013]: causal consistency **with**
//! multi-object write-only transactions, paying for them with read-only
//! transactions that may need up to three rounds.
//!
//! Table 1 row: R ≤ 3, V ≤ 2, non-blocking, W, causal consistency.
//!
//! * **Write-only transactions** run two-phase commit with *pending*
//!   markers (2PC-PCI): participants propose Lamport timestamps and hold
//!   the writes as pending; the coordinator commits at the maximum
//!   proposal.
//! * **Read-only transactions** are logical-time snapshots:
//!   - *round 1*: each server returns its latest committed version per
//!     key plus a **promise** `L` — a logical time it bumps its clock to,
//!     guaranteeing every future commit at that server exceeds `L` — and
//!     the minimum pending proposal. The client picks the snapshot
//!     `t = max(versions, its own context)`; a server whose promise
//!     covers `t` and has no pending below `t` is settled.
//!   - *round 2*: unsettled servers are asked for the latest version
//!     `≤ t` plus the pending transactions proposed `≤ t` (ids, buffered
//!     writes) — at most two values per key cross the wire, matching the
//!     V ≤ 2 in Table 1.
//!   - *round 3*: the client asks the pending transactions' coordinators
//!     for their commit decisions and applies the committed ones `≤ t`
//!     client-side. Undecided transactions are excluded — safe, because
//!     an undecided write cannot be a causal dependency of anything the
//!     client read.
//!
//! No server ever defers a response: non-blocking throughout.

use crate::common::{
    Completed, LamportClock, MvStore, ProtocolNode, Topology, Version, Wire, WireError, MAX_RETRIES,
};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// `(key, value, commit_ts)` of a committed version; ts 0 ⇒ `⊥`.
pub type Item = (Key, Value, u64);

/// A pending (prepared, undecided) transaction as exposed to a reader.
#[derive(Clone, Debug)]
pub struct PendingInfo {
    /// The write transaction.
    pub tx: TxId,
    /// Its proposal at this server.
    pub proposed: u64,
    /// Its coordinator (for round 3).
    pub coordinator: ProcessId,
    /// Buffered writes for the requested keys.
    pub writes: Vec<(Key, Value)>,
}

/// Eiger message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },

    /// Client → coordinator: run this write-only transaction.
    WtxReq {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
    },
    /// Coordinator → participant: propose and hold these writes.
    Prepare {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
        coordinator: ProcessId,
    },
    /// Participant → coordinator: my proposal.
    PrepareResp { id: TxId, proposed: u64 },
    /// Coordinator → participant: commit at `ts`.
    Commit { id: TxId, ts: u64 },
    /// Coordinator → client: transaction committed at `ts`.
    WtxAck { id: TxId, ts: u64 },

    /// Client → server: round-1 optimistic read.
    Read1 { id: TxId, keys: Vec<Key> },
    /// Server → client: latest committed versions + promise + min pending.
    Read1Resp {
        id: TxId,
        items: Vec<Item>,
        promise: u64,
        min_pending: u64,
    },
    /// Client → server: round-2 read at snapshot `t`.
    Read2 { id: TxId, keys: Vec<Key>, t: u64 },
    /// Server → client: versions `≤ t` plus pendings proposed `≤ t`.
    Read2Resp {
        id: TxId,
        items: Vec<Item>,
        pendings: Vec<PendingInfo>,
    },
    /// Client → coordinator: round-3 decision check.
    CheckTx { id: TxId, txs: Vec<TxId> },
    /// Coordinator → client: `(tx, Some(commit_ts) | None)` decisions.
    CheckResp {
        id: TxId,
        decisions: Vec<(TxId, Option<u64>)>,
    },
    /// Self-timer: retry outstanding requests of transaction `id` if it
    /// is still pending (armed only when `Topology::retry_after > 0`).
    RetryTick { id: TxId, attempt: u32 },
}

/// In-flight write-only transaction at the client (kept for resend).
#[derive(Clone, Debug)]
struct PendingWtx {
    writes: Vec<(Key, Value)>,
    dep_ts: u64,
    invoked_at: u64,
}

/// Which round a ROT is currently in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RotPhase {
    One,
    Two,
    Three,
}

/// In-flight ROT at the client. The phase tag plus the waiting *set*
/// make response handling idempotent: a response only counts if it is
/// for the current round and from a peer still outstanding.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    phase: RotPhase,
    /// Servers (rounds 1–2) or coordinators (round 3) still outstanding.
    waiting: BTreeSet<ProcessId>,
    /// Best committed value per key so far: `(value, ts)`.
    items: HashMap<Key, (Value, u64)>,
    /// Round-1 responses: per server, (promise, min_pending).
    round1: HashMap<ProcessId, (u64, u64)>,
    snapshot: u64,
    pendings: Vec<PendingInfo>,
    /// Round-3 fan-out by coordinator (kept for resend).
    checks: BTreeMap<ProcessId, Vec<TxId>>,
    invoked_at: u64,
}

/// Eiger client.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Highest commit/snapshot timestamp observed (the causal context).
    dep_ts: u64,
    rots: HashMap<TxId, PendingRot>,
    wtxs: HashMap<TxId, PendingWtx>,
    completed: HashMap<TxId, Completed>,
}

/// Coordinator-side state of one 2PC instance. `responded` (a set, not
/// a counter) makes duplicated proposals idempotent; `per_server` and
/// `dep_ts` are kept so a client retry can re-drive lost `Prepare`s.
#[derive(Clone, Debug)]
struct CoordTx {
    client: ProcessId,
    participants: Vec<ProcessId>,
    per_server: BTreeMap<ProcessId, Vec<(Key, Value)>>,
    dep_ts: u64,
    proposals: Vec<u64>,
    responded: BTreeSet<ProcessId>,
}

/// A pending (prepared) transaction at a participant.
#[derive(Clone, Debug)]
struct PreparedTx {
    proposed: u64,
    coordinator: ProcessId,
    writes: Vec<(Key, Value)>,
}

/// Eiger server: committed store + pending transactions + coordination.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    clock: LamportClock,
    prepared: HashMap<TxId, PreparedTx>,
    coordinating: HashMap<TxId, CoordTx>,
    /// Commit decisions, kept for round-3 checks.
    decisions: HashMap<TxId, u64>,
}

/// An Eiger node.
#[derive(Clone, Debug)]
pub enum EigerNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl EigerNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let groups = c.topo.group_by_primary(&keys);
                    let waiting: BTreeSet<ProcessId> = groups.iter().map(|&(s, _)| s).collect();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::Read1 { id, keys: ks });
                    }
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            phase: RotPhase::One,
                            waiting,
                            items: HashMap::new(),
                            round1: HashMap::new(),
                            snapshot: 0,
                            pendings: Vec::new(),
                            checks: BTreeMap::new(),
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::InvokeWtx { id, writes } => {
                    let coordinator = c.topo.primary(writes[0].0);
                    let dep_ts = c.dep_ts;
                    ctx.send(
                        coordinator,
                        Msg::WtxReq {
                            id,
                            writes: writes.clone(),
                            dep_ts,
                        },
                    );
                    c.wtxs.insert(
                        id,
                        PendingWtx {
                            writes,
                            dep_ts,
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::WtxAck { id, ts } => {
                    if let Some(w) = c.wtxs.remove(&id) {
                        c.dep_ts = c.dep_ts.max(ts);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at: w.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::Read1Resp {
                    id,
                    items,
                    promise,
                    min_pending,
                } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    // Wrong round, or a duplicate from this server: ignore.
                    if p.phase != RotPhase::One || !p.waiting.remove(&env.from) {
                        continue;
                    }
                    for (k, v, ts) in items {
                        p.items.insert(k, (v, ts));
                    }
                    p.round1.insert(env.from, (promise, min_pending));
                    if p.waiting.is_empty() {
                        Self::after_round_one(c, id, ctx);
                    }
                }
                Msg::Read2Resp {
                    id,
                    items,
                    pendings,
                } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    if p.phase != RotPhase::Two || !p.waiting.remove(&env.from) {
                        continue;
                    }
                    for (k, v, ts) in items {
                        // Round 2 returns the latest version ≤ t, which
                        // may be older than a round-1 item that exceeded
                        // the snapshot; it replaces the item for that key.
                        p.items.insert(k, (v, ts));
                    }
                    p.pendings.extend(pendings);
                    if p.waiting.is_empty() {
                        Self::after_round_two(c, id, ctx);
                    }
                }
                Msg::CheckResp { id, decisions } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    if p.phase != RotPhase::Three || !p.waiting.remove(&env.from) {
                        continue;
                    }
                    let t = p.snapshot;
                    for (tx, decision) in decisions {
                        if let Some(ts) = decision {
                            if ts <= t {
                                // Apply the committed pending writes.
                                let infos: Vec<(Key, Value)> = p
                                    .pendings
                                    .iter()
                                    .filter(|i| i.tx == tx)
                                    .flat_map(|i| i.writes.iter().copied())
                                    .collect();
                                for (k, v) in infos {
                                    let cur = p.items.get(&k).map_or(0, |&(_, cts)| cts);
                                    if ts > cur {
                                        p.items.insert(k, (v, ts));
                                    }
                                }
                            }
                        }
                    }
                    if p.waiting.is_empty() {
                        Self::complete_rot(c, id, ctx.now());
                    }
                }
                Msg::RetryTick { id, attempt } => {
                    let mut live = false;
                    if let Some(p) = c.rots.get(&id) {
                        live = true;
                        match p.phase {
                            RotPhase::One => {
                                for (server, ks) in c.topo.group_by_primary(&p.keys) {
                                    if p.waiting.contains(&server) {
                                        ctx.send(server, Msg::Read1 { id, keys: ks });
                                    }
                                }
                            }
                            RotPhase::Two => {
                                // Re-read at the SAME snapshot: idempotent.
                                for (server, ks) in c.topo.group_by_primary(&p.keys) {
                                    if p.waiting.contains(&server) {
                                        ctx.send(
                                            server,
                                            Msg::Read2 {
                                                id,
                                                keys: ks,
                                                t: p.snapshot,
                                            },
                                        );
                                    }
                                }
                            }
                            RotPhase::Three => {
                                for (&coord, txs) in &p.checks {
                                    if p.waiting.contains(&coord) {
                                        ctx.send(
                                            coord,
                                            Msg::CheckTx {
                                                id,
                                                txs: txs.clone(),
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                    if let Some(pw) = c.wtxs.get(&id) {
                        live = true;
                        let coordinator = c.topo.primary(pw.writes[0].0);
                        ctx.send(
                            coordinator,
                            Msg::WtxReq {
                                id,
                                writes: pw.writes.clone(),
                                dep_ts: pw.dep_ts,
                            },
                        );
                    }
                    if live {
                        Self::arm_retry(c, id, attempt + 1, ctx);
                    }
                }
                _ => {}
            }
        }
    }

    /// Arm (or re-arm, with exponential backoff) the per-transaction
    /// retry timer. No-op when retries are disabled or exhausted.
    fn arm_retry(c: &ClientState, id: TxId, attempt: u32, ctx: &mut Ctx<Msg>) {
        if c.topo.retry_after == 0 || attempt >= MAX_RETRIES {
            return;
        }
        ctx.set_timer(
            c.topo.retry_after << attempt,
            Msg::RetryTick { id, attempt },
        );
    }

    /// Round 1 done: pick the snapshot; settled servers are covered,
    /// unsettled ones get a round-2 request.
    fn after_round_one(c: &mut ClientState, id: TxId, ctx: &mut Ctx<Msg>) {
        let (t, unsettled, groups) = {
            let Some(p) = c.rots.get_mut(&id) else {
                return;
            };
            let t = p
                .items
                .values()
                .map(|&(_, ts)| ts)
                .chain(std::iter::once(c.dep_ts))
                .max()
                .unwrap_or(0);
            p.snapshot = t;
            let mut unsettled: Vec<ProcessId> = p
                .round1
                .iter()
                .filter(|&(_, &(promise, min_pending))| promise < t || min_pending <= t)
                .map(|(&s, _)| s)
                .collect();
            unsettled.sort_unstable();
            (t, unsettled, c.topo.group_by_primary(&p.keys))
        };
        if unsettled.is_empty() {
            Self::complete_rot(c, id, ctx.now());
            return;
        }
        let Some(p) = c.rots.get_mut(&id) else {
            return;
        };
        p.phase = RotPhase::Two;
        p.waiting = unsettled.iter().copied().collect();
        for (server, ks) in groups {
            if unsettled.contains(&server) {
                ctx.send(server, Msg::Read2 { id, keys: ks, t });
            }
        }
    }

    /// Round 2 done: resolve pending transactions with their
    /// coordinators, or finish if there are none.
    fn after_round_two(c: &mut ClientState, id: TxId, ctx: &mut Ctx<Msg>) {
        let by_coord: BTreeMap<ProcessId, Vec<TxId>> = {
            let Some(p) = c.rots.get_mut(&id) else {
                return;
            };
            if p.pendings.is_empty() {
                Self::complete_rot(c, id, ctx.now());
                return;
            }
            let mut by_coord: BTreeMap<ProcessId, Vec<TxId>> = Default::default();
            for info in &p.pendings {
                let txs = by_coord.entry(info.coordinator).or_default();
                if !txs.contains(&info.tx) {
                    txs.push(info.tx);
                }
            }
            p.phase = RotPhase::Three;
            p.waiting = by_coord.keys().copied().collect();
            p.checks = by_coord.clone();
            by_coord
        };
        for (coord, txs) in by_coord {
            ctx.send(coord, Msg::CheckTx { id, txs });
        }
    }

    fn complete_rot(c: &mut ClientState, id: TxId, now: u64) {
        let Some(p) = c.rots.remove(&id) else {
            return;
        };
        let mut reads = Vec::with_capacity(p.keys.len());
        let mut max_seen = p.snapshot;
        for &k in &p.keys {
            let (v, ts) = p.items.get(&k).copied().unwrap_or((Value::BOTTOM, 0));
            reads.push((k, v));
            max_seen = max_seen.max(ts);
        }
        c.dep_ts = c.dep_ts.max(max_seen);
        c.completed.insert(
            id,
            Completed {
                id,
                reads,
                invoked_at: p.invoked_at,
                completed_at: now,
            },
        );
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::WtxReq { id, writes, dep_ts } => {
                    // Idempotence: already decided → re-ack (the original
                    // ack may have been lost); still coordinating →
                    // re-drive the outstanding prepares. A coordinator
                    // that crashed mid-2PC restarts from scratch —
                    // participant-side dedup makes the restart safe.
                    if let Some(&ts) = s.decisions.get(&id) {
                        ctx.send(env.from, Msg::WtxAck { id, ts });
                        continue;
                    }
                    let me = ctx.me();
                    if let Some(co) = s.coordinating.get(&id) {
                        for (&server, ws) in &co.per_server {
                            if !co.responded.contains(&server) {
                                ctx.send(
                                    server,
                                    Msg::Prepare {
                                        id,
                                        writes: ws.clone(),
                                        dep_ts: co.dep_ts,
                                        coordinator: me,
                                    },
                                );
                            }
                        }
                        continue;
                    }
                    s.clock.witness(dep_ts);
                    // Fan out prepares, grouping writes by primary; the
                    // coordinator participates via the network like
                    // everyone else, keeping one code path.
                    let mut per_server: BTreeMap<ProcessId, Vec<(Key, Value)>> = Default::default();
                    for &(k, v) in &writes {
                        per_server
                            .entry(s.topo.primary(k))
                            .or_default()
                            .push((k, v));
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    s.coordinating.insert(
                        id,
                        CoordTx {
                            client: env.from,
                            participants,
                            per_server: per_server.clone(),
                            dep_ts,
                            proposals: Vec::new(),
                            responded: BTreeSet::new(),
                        },
                    );
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Prepare {
                                id,
                                writes: ws,
                                dep_ts,
                                coordinator: me,
                            },
                        );
                    }
                }
                Msg::Prepare {
                    id,
                    writes,
                    dep_ts,
                    coordinator,
                } => {
                    // Idempotence: already committed here → re-ack with
                    // the decided ts; still prepared → re-ack the same
                    // proposal. Never mint a second proposal, which would
                    // orphan a pending marker and poison `min_pending`.
                    if let Some(&ts) = s.decisions.get(&id) {
                        ctx.send(coordinator, Msg::PrepareResp { id, proposed: ts });
                        continue;
                    }
                    if let Some(p) = s.prepared.get(&id) {
                        let proposed = p.proposed;
                        ctx.send(coordinator, Msg::PrepareResp { id, proposed });
                        continue;
                    }
                    s.clock.witness(dep_ts);
                    let proposed = s.clock.tick();
                    s.prepared.insert(
                        id,
                        PreparedTx {
                            proposed,
                            coordinator,
                            writes,
                        },
                    );
                    ctx.send(coordinator, Msg::PrepareResp { id, proposed });
                }
                Msg::PrepareResp { id, proposed } => {
                    let finished = {
                        let Some(co) = s.coordinating.get_mut(&id) else {
                            continue;
                        };
                        // Duplicate proposal from this participant: ignore.
                        if !co.responded.insert(env.from) {
                            continue;
                        }
                        co.proposals.push(proposed);
                        co.responded.len() == co.participants.len()
                    };
                    if finished {
                        let Some(co) = s.coordinating.remove(&id) else {
                            continue;
                        };
                        let ts = co.proposals.iter().copied().max().unwrap_or(0);
                        s.clock.witness(ts);
                        s.decisions.insert(id, ts);
                        for part in &co.participants {
                            ctx.send(*part, Msg::Commit { id, ts });
                        }
                        ctx.send(co.client, Msg::WtxAck { id, ts });
                    }
                }
                Msg::Commit { id, ts } => {
                    // `remove` makes a duplicated commit a no-op; the
                    // decision is recorded so a late duplicate `Prepare`
                    // re-acks instead of re-preparing.
                    if let Some(p) = s.prepared.remove(&id) {
                        s.clock.witness(ts);
                        s.decisions.insert(id, ts);
                        for (k, v) in p.writes {
                            s.store.insert(
                                k,
                                Version {
                                    value: v,
                                    ts,
                                    tx: id,
                                },
                            );
                        }
                    }
                }
                Msg::Read1 { id, keys } => {
                    // The promise: bump the clock so every future commit
                    // here exceeds what we are about to report.
                    let promise = s.clock.tick();
                    let items: Vec<Item> = keys
                        .iter()
                        .map(|&k| match s.store.latest(k) {
                            Some(v) => (k, v.value, v.ts),
                            None => (k, Value::BOTTOM, 0),
                        })
                        .collect();
                    let min_pending = s
                        .prepared
                        .values()
                        .filter(|p| p.writes.iter().any(|(k, _)| keys.contains(k)))
                        .map(|p| p.proposed)
                        .min()
                        .unwrap_or(u64::MAX);
                    ctx.send(
                        env.from,
                        Msg::Read1Resp {
                            id,
                            items,
                            promise,
                            min_pending,
                        },
                    );
                }
                Msg::Read2 { id, keys, t } => {
                    // Promise again: after this, nothing new commits ≤ t.
                    s.clock.witness(t);
                    let _ = s.clock.tick();
                    let items: Vec<Item> = keys
                        .iter()
                        .map(|&k| match s.store.latest_at(k, t) {
                            Some(v) => (k, v.value, v.ts),
                            None => (k, Value::BOTTOM, 0),
                        })
                        .collect();
                    let mut pendings: Vec<PendingInfo> = s
                        .prepared
                        .iter()
                        .filter(|(_, p)| p.proposed <= t)
                        .filter_map(|(&tx, p)| {
                            let writes: Vec<(Key, Value)> = p
                                .writes
                                .iter()
                                .filter(|(k, _)| keys.contains(k))
                                .copied()
                                .collect();
                            (!writes.is_empty()).then_some(PendingInfo {
                                tx,
                                proposed: p.proposed,
                                coordinator: p.coordinator,
                                writes,
                            })
                        })
                        .collect();
                    pendings.sort_unstable_by_key(|p| p.tx);
                    ctx.send(
                        env.from,
                        Msg::Read2Resp {
                            id,
                            items,
                            pendings,
                        },
                    );
                }
                Msg::CheckTx { id, txs } => {
                    let decisions: Vec<(TxId, Option<u64>)> = txs
                        .iter()
                        .map(|tx| (*tx, s.decisions.get(tx).copied()))
                        .collect();
                    ctx.send(env.from, Msg::CheckResp { id, decisions });
                }
                _ => {}
            }
        }
    }
}

impl Actor for EigerNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            EigerNode::Client(c) => Self::client_step(c, ctx),
            EigerNode::Server(s) => Self::server_step(s, ctx),
        }
    }

    fn on_crash(&mut self) {
        if let EigerNode::Server(s) = self {
            // In-flight coordination is volatile; the store, the
            // prepared markers and the decision log model durable
            // (logged) state — real Eiger logs prepares and decisions
            // before acking. A client retry restarts 2PC and the
            // participant-side dedup keeps the restart idempotent.
            s.coordinating.clear();
        }
    }
}

impl ProtocolNode for EigerNode {
    const NAME: &'static str = "Eiger";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        EigerNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            clock: LamportClock::new(id.0 as u8),
            prepared: HashMap::new(),
            coordinating: HashMap::new(),
            decisions: HashMap::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        EigerNode::Client(ClientState {
            topo: topo.clone(),
            dep_ts: 0,
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            EigerNode::Client(c) => c.completed.get(&id),
            EigerNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            EigerNode::Client(c) => c.completed.remove(&id),
            EigerNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::Read1Resp { items, .. } => crate::common::max_values_per_object(
                items
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            // snowflow: values(1): round two pins one version per key; `pendings` carries write intentions, not extra committed versions
            Msg::Read2Resp {
                items, pendings, ..
            } => crate::common::max_values_per_object(
                items
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k)
                    .chain(
                        pendings
                            .iter()
                            .flat_map(|p| p.writes.iter().map(|&(k, _)| k)),
                    ),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::Read1 { .. } | Msg::Read2 { .. } | Msg::CheckTx { .. } | Msg::WtxReq { .. }
        )
    }
}

/// Test/diagnostic helper: number of prepared-but-undecided write
/// transactions held at a server.
pub fn pending_count(node: &EigerNode) -> usize {
    match node {
        EigerNode::Server(s) => s.prepared.len(),
        EigerNode::Client(_) => 0,
    }
}

impl Wire for PendingInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tx.encode(out);
        self.proposed.encode(out);
        self.coordinator.encode(out);
        self.writes.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PendingInfo {
            tx: TxId::decode(buf)?,
            proposed: u64::decode(buf)?,
            coordinator: ProcessId::decode(buf)?,
            writes: Vec::decode(buf)?,
        })
    }
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::InvokeRot { id, keys } => {
                out.push(0);
                id.encode(out);
                keys.encode(out);
            }
            Msg::InvokeWtx { id, writes } => {
                out.push(1);
                id.encode(out);
                writes.encode(out);
            }
            Msg::WtxReq { id, writes, dep_ts } => {
                out.push(2);
                id.encode(out);
                writes.encode(out);
                dep_ts.encode(out);
            }
            Msg::Prepare {
                id,
                writes,
                dep_ts,
                coordinator,
            } => {
                out.push(3);
                id.encode(out);
                writes.encode(out);
                dep_ts.encode(out);
                coordinator.encode(out);
            }
            Msg::PrepareResp { id, proposed } => {
                out.push(4);
                id.encode(out);
                proposed.encode(out);
            }
            Msg::Commit { id, ts } => {
                out.push(5);
                id.encode(out);
                ts.encode(out);
            }
            Msg::WtxAck { id, ts } => {
                out.push(6);
                id.encode(out);
                ts.encode(out);
            }
            Msg::Read1 { id, keys } => {
                out.push(7);
                id.encode(out);
                keys.encode(out);
            }
            Msg::Read1Resp {
                id,
                items,
                promise,
                min_pending,
            } => {
                out.push(8);
                id.encode(out);
                items.encode(out);
                promise.encode(out);
                min_pending.encode(out);
            }
            Msg::Read2 { id, keys, t } => {
                out.push(9);
                id.encode(out);
                keys.encode(out);
                t.encode(out);
            }
            Msg::Read2Resp {
                id,
                items,
                pendings,
            } => {
                out.push(10);
                id.encode(out);
                items.encode(out);
                pendings.encode(out);
            }
            Msg::CheckTx { id, txs } => {
                out.push(11);
                id.encode(out);
                txs.encode(out);
            }
            Msg::CheckResp { id, decisions } => {
                out.push(12);
                id.encode(out);
                decisions.encode(out);
            }
            Msg::RetryTick { id, attempt } => {
                out.push(13);
                id.encode(out);
                attempt.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => Msg::InvokeRot {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
            },
            1 => Msg::InvokeWtx {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
            },
            2 => Msg::WtxReq {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
                dep_ts: u64::decode(buf)?,
            },
            3 => Msg::Prepare {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
                dep_ts: u64::decode(buf)?,
                coordinator: ProcessId::decode(buf)?,
            },
            4 => Msg::PrepareResp {
                id: TxId::decode(buf)?,
                proposed: u64::decode(buf)?,
            },
            5 => Msg::Commit {
                id: TxId::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            6 => Msg::WtxAck {
                id: TxId::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            7 => Msg::Read1 {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
            },
            8 => Msg::Read1Resp {
                id: TxId::decode(buf)?,
                items: Vec::decode(buf)?,
                promise: u64::decode(buf)?,
                min_pending: u64::decode(buf)?,
            },
            9 => Msg::Read2 {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
                t: u64::decode(buf)?,
            },
            10 => Msg::Read2Resp {
                id: TxId::decode(buf)?,
                items: Vec::decode(buf)?,
                pendings: Vec::decode(buf)?,
            },
            11 => Msg::CheckTx {
                id: TxId::decode(buf)?,
                txs: Vec::decode(buf)?,
            },
            12 => Msg::CheckResp {
                id: TxId::decode(buf)?,
                decisions: Vec::decode(buf)?,
            },
            13 => Msg::RetryTick {
                id: TxId::decode(buf)?,
                attempt: u32::decode(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "eiger::Msg",
                    tag,
                })
            }
        })
    }
}

crate::snow_properties! {
    system: "Eiger",
    consistency: Causal,
    rounds: 3,
    values: 2,
    nonblocking: true,
    write_tx: true,
    requests: [Read1, Read2, CheckTx, WtxReq],
    value_replies: [Read1Resp, Read2Resp],
    paper_row: "Eiger",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::ClientId;
    use cbf_sim::MILLIS;

    fn minimal() -> Cluster<EigerNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn write_tx_commits_atomically() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        assert_eq!(w.audit.objects, 2);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.reads[1].1, w.writes[1].1);
        assert!(c.check().is_ok());
    }

    #[test]
    fn quiescent_reads_take_one_round_and_never_block() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.audit.rounds, 1, "audit: {:?}", r.audit);
        assert!(!r.audit.blocked);
    }

    #[test]
    fn read_during_commit_window_resolves_pending_via_rounds() {
        // Freeze the Commit message to p1 so a reader finds the
        // transaction pending there; it must resolve it through rounds
        // 2–3 — without blocking — and read a consistent snapshot.
        let mut c = minimal();
        let v0_init = c.alloc_value();
        let v1_init = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), v0_init)]).unwrap();
        c.write_tx(ClientId(0), &[(Key(1), v1_init)]).unwrap();

        let writer = c.topo.client_pid(ClientId(0));
        let id = c.alloc_tx();
        let vals = (c.alloc_value(), c.alloc_value());
        c.world.inject(
            writer,
            Msg::InvokeWtx {
                id,
                writes: vec![(Key(0), vals.0), (Key(1), vals.1)],
            },
        );
        // Run until p1 holds a prepared tx, then freeze commit delivery.
        c.world.run_until_within(MILLIS, |w| {
            pending_count(w.actor(cbf_sim::ProcessId(1))) > 0
        });
        assert_eq!(pending_count(c.world.actor(cbf_sim::ProcessId(1))), 1);
        c.world.hold(cbf_sim::ProcessId(0), cbf_sim::ProcessId(1));
        c.world
            .run_until_within(MILLIS, |w| w.actor(writer).completed(id).is_some());
        assert!(c.world.actor(writer).completed(id).is_some());

        // p1 still has the pending tx (commit frozen). A reader now
        // resolves it via round 3 at the coordinator.
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert!(!r.audit.blocked, "Eiger must not block: {:?}", r.audit);
        assert!(
            r.audit.rounds >= 2,
            "pending forces extra rounds: {:?}",
            r.audit
        );
        // Round 1 at p0 returned the committed new X0, so the snapshot
        // includes the transaction: both new values.
        assert_eq!(r.reads, vec![(Key(0), vals.0), (Key(1), vals.1)]);

        // Release and check the full history (adding Tw manually since
        // the facade path was bypassed).
        c.world
            .release(cbf_sim::ProcessId(0), cbf_sim::ProcessId(1));
        c.world.run_for(MILLIS);
        let mut h = c.history().clone();
        h.push(cbf_model::history::TxRecord {
            id,
            client: ClientId(0),
            reads: vec![],
            writes: vec![(Key(0), vals.0), (Key(1), vals.1)],
            invoked_at: 0,
            completed_at: 0,
        });
        assert!(cbf_model::check_causal(&h).is_ok());
    }

    #[test]
    fn rot_never_returns_fractured_write_tx() {
        // Concurrent multi-writes + reads under chaotic schedules: the
        // history must remain causal (no fractured transaction reads).
        for seed in 0..6u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            c.world.run_chaotic(seed, 200_000);
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
        }
    }

    #[test]
    fn rounds_never_exceed_three() {
        let mut c = minimal();
        for i in 0..10u32 {
            c.write_tx_auto(ClientId(i % 2), &[Key(0), Key(1)]).unwrap();
            let r = c.read_tx(ClientId(2 + i % 2), &[Key(0), Key(1)]).unwrap();
            assert!(r.audit.rounds <= 3, "audit: {:?}", r.audit);
        }
        assert!(c.profile().multi_write_supported);
        assert!(c.profile().nonblocking());
    }

    #[test]
    fn client_session_reads_its_own_commit() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(3), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(3), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert!(cbf_model::check_read_your_writes(c.history()).is_empty());
    }
}
