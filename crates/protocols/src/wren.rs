//! Wren [Spirovska et al., DSN 2018]: the N + V + W corner — non-blocking
//! one-value reads and multi-object write transactions, paying with a
//! **second round** of client communication.
//!
//! Table 1 row: R = 2, V = 1, non-blocking, W, causal consistency.
//!
//! Mechanism (§3.4 of the paper): servers continuously agree on a *global
//! stable snapshot* (GSS) — a timestamp below which no transaction is
//! still pending anywhere. A read-only transaction first asks any server
//! for the current GSS (round 1), then reads every key at that snapshot
//! (round 2): the snapshot is in the sealed past, so servers answer from
//! storage immediately with exactly one value. Writes commit *above* the
//! GSS and become readable only after stabilization; each client caches
//! its own recent writes so it still reads them (read-your-writes)
//! before they stabilize.
//!
//! Stabilization protocol: each server tracks its *local stable time*
//! (LST = just below its lowest pending proposal, or its clock when idle)
//! and broadcasts it on a timer; GSS = the minimum LST heard from every
//! server. LSTs are monotonic, hence so is the GSS.

use crate::common::{Completed, HybridClock, MvStore, ProtocolNode, Topology, Version};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId, Time, MICROS};
use std::collections::HashMap;

/// How often servers broadcast their local stable time.
pub const STABLE_PERIOD: Time = 100 * MICROS;

/// Wren message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },

    /// Timer: broadcast my LST.
    StableTick,
    /// Server → server: my local stable time.
    LstBcast { lst: u64 },

    /// Client → any server: what is the global stable snapshot?
    GssReq { id: TxId },
    /// Server → client: the GSS (a timestamp — metadata, zero values).
    GssResp { id: TxId, gss: u64 },
    /// Client → server: read these keys at snapshot `at`.
    ReadAt { id: TxId, keys: Vec<Key>, at: u64 },
    /// Server → client: one value per key at the snapshot.
    ReadAtResp {
        id: TxId,
        reads: Vec<(Key, Value, u64)>,
    },

    /// Client → coordinator: run this write-only transaction.
    WtxReq {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
    },
    /// Coordinator → participant: propose and hold.
    Prepare {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
        coordinator: ProcessId,
    },
    /// Participant → coordinator: proposal.
    PrepareResp { id: TxId, proposed: u64 },
    /// Coordinator → participant: commit at `ts`.
    Commit { id: TxId, ts: u64 },
    /// Coordinator → client: committed at `ts`.
    WtxAck { id: TxId, ts: u64 },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    snapshot: u64,
    got: HashMap<Key, (Value, u64)>,
    awaiting: usize,
    invoked_at: u64,
}

/// Wren client: write cache for read-your-writes + snapshot floor for
/// monotonicity.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Own writes not yet known stable: key → (value, commit ts).
    cache: HashMap<Key, (Value, u64)>,
    /// Highest commit timestamp of own transactions (carried as dep).
    dep_ts: u64,
    /// Highest snapshot used so far (monotonic reads across ROTs).
    last_snapshot: u64,
    rots: HashMap<TxId, PendingRot>,
    wtxs: HashMap<TxId, (Vec<(Key, Value)>, u64)>,
    completed: HashMap<TxId, Completed>,
}

/// Coordinator-side 2PC state.
#[derive(Clone, Debug)]
struct CoordTx {
    client: ProcessId,
    participants: Vec<ProcessId>,
    proposals: Vec<u64>,
    awaiting: usize,
}

/// Wren server.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    clock: HybridClock,
    /// Prepared, undecided transactions: tx → proposal.
    pending: HashMap<TxId, (u64, Vec<(Key, Value)>)>,
    coordinating: HashMap<TxId, CoordTx>,
    /// Last LST heard per server (index by server id), own slot included.
    known_lst: Vec<u64>,
    me: ProcessId,
    /// Stabilization broadcast period (tunable via `Topology::tuning`).
    period: cbf_sim::Time,
}

impl ServerState {
    /// Local stable time: everything at or below this is sealed here.
    fn lst(&mut self, now: Time) -> u64 {
        let min_pending = self.pending.values().map(|&(p, _)| p).min();
        match min_pending {
            Some(p) => p - 1,
            None => self.clock.tick(now),
        }
    }

    /// Global stable snapshot: the minimum LST heard from every server.
    fn gss(&self) -> u64 {
        self.known_lst.iter().copied().min().unwrap_or(0)
    }
}

/// A Wren node.
#[derive(Clone, Debug)]
pub enum WrenNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl WrenNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    // Round 1: ask the primary of the first key for the GSS.
                    let server = c.topo.primary(keys[0]);
                    ctx.send(server, Msg::GssReq { id });
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            snapshot: 0,
                            got: HashMap::new(),
                            awaiting: 0,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::GssResp { id, gss } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    // Snapshot floor keeps reads monotonic across ROTs.
                    let at = gss.max(c.last_snapshot);
                    c.last_snapshot = at;
                    p.snapshot = at;
                    let groups = c.topo.group_by_primary(&p.keys);
                    p.awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::ReadAt { id, keys: ks, at });
                    }
                }
                Msg::ReadAtResp { id, reads } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    for (k, v, ts) in reads {
                        p.got.insert(k, (v, ts));
                    }
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        let Some(p) = c.rots.remove(&id) else {
                            continue;
                        };
                        let mut out = Vec::with_capacity(p.keys.len());
                        for &k in &p.keys {
                            let (mut v, mut ts) =
                                p.got.get(&k).copied().unwrap_or((Value::BOTTOM, 0));
                            // Read-your-writes: merge the client cache
                            // where it is newer than the snapshot value.
                            if let Some(&(cv, cts)) = c.cache.get(&k) {
                                if cts > ts {
                                    v = cv;
                                    ts = cts;
                                }
                            }
                            out.push((k, v));
                            let _ = ts;
                        }
                        // Prune cache entries now covered by the snapshot.
                        let snap = p.snapshot;
                        c.cache.retain(|_, &mut (_, ts)| ts > snap);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: out,
                                invoked_at: p.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let coordinator = c.topo.primary(writes[0].0);
                    ctx.send(
                        coordinator,
                        Msg::WtxReq {
                            id,
                            writes: writes.clone(),
                            dep_ts: c.dep_ts,
                        },
                    );
                    c.wtxs.insert(id, (writes, ctx.now()));
                }
                Msg::WtxAck { id, ts } => {
                    if let Some((writes, invoked_at)) = c.wtxs.remove(&id) {
                        c.dep_ts = c.dep_ts.max(ts);
                        for (k, v) in writes {
                            c.cache.insert(k, (v, ts));
                        }
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::StableTick => {
                    let lst = s.lst(ctx.now());
                    let my = s.me.index();
                    s.known_lst[my] = s.known_lst[my].max(lst);
                    for srv in s.topo.servers() {
                        if srv != s.me {
                            ctx.send(srv, Msg::LstBcast { lst });
                        }
                    }
                    ctx.set_timer(s.period, Msg::StableTick);
                }
                Msg::LstBcast { lst } => {
                    let idx = env.from.index();
                    s.known_lst[idx] = s.known_lst[idx].max(lst);
                }
                Msg::GssReq { id } => {
                    // Refresh the own-LST slot before answering so a
                    // single-server deployment stabilizes without timers.
                    let lst = s.lst(ctx.now());
                    let my = s.me.index();
                    s.known_lst[my] = s.known_lst[my].max(lst);
                    ctx.send(env.from, Msg::GssResp { id, gss: s.gss() });
                }
                Msg::ReadAt { id, keys, at } => {
                    // `at ≤ GSS`: sealed — the latest version ≤ at is
                    // final, served immediately (non-blocking, one value).
                    let reads: Vec<(Key, Value, u64)> = keys
                        .iter()
                        .map(|&k| match s.store.latest_at(k, at) {
                            Some(v) => (k, v.value, v.ts),
                            None => (k, Value::BOTTOM, 0),
                        })
                        .collect();
                    ctx.send(env.from, Msg::ReadAtResp { id, reads });
                }
                Msg::WtxReq { id, writes, dep_ts } => {
                    s.clock.witness(dep_ts);
                    let mut per_server: std::collections::BTreeMap<ProcessId, Vec<(Key, Value)>> =
                        Default::default();
                    for &(k, v) in &writes {
                        per_server
                            .entry(s.topo.primary(k))
                            .or_default()
                            .push((k, v));
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    s.coordinating.insert(
                        id,
                        CoordTx {
                            client: env.from,
                            participants: participants.clone(),
                            proposals: Vec::new(),
                            awaiting: participants.len(),
                        },
                    );
                    let me = ctx.me();
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Prepare {
                                id,
                                writes: ws,
                                dep_ts,
                                coordinator: me,
                            },
                        );
                    }
                }
                Msg::Prepare {
                    id,
                    writes,
                    dep_ts,
                    coordinator,
                } => {
                    s.clock.witness(dep_ts);
                    // Proposal above our LST and above the dep: pendings
                    // hold the LST down until the commit resolves.
                    let proposed = s.clock.tick(ctx.now());
                    s.pending.insert(id, (proposed, writes));
                    ctx.send(coordinator, Msg::PrepareResp { id, proposed });
                }
                Msg::PrepareResp { id, proposed } => {
                    let finished = {
                        let Some(co) = s.coordinating.get_mut(&id) else {
                            continue;
                        };
                        co.proposals.push(proposed);
                        co.awaiting -= 1;
                        co.awaiting == 0
                    };
                    if finished {
                        let Some(co) = s.coordinating.remove(&id) else {
                            continue;
                        };
                        let ts = co.proposals.iter().copied().max().unwrap_or(0);
                        s.clock.witness(ts);
                        for part in &co.participants {
                            ctx.send(*part, Msg::Commit { id, ts });
                        }
                        ctx.send(co.client, Msg::WtxAck { id, ts });
                    }
                }
                Msg::Commit { id, ts } => {
                    if let Some((_, writes)) = s.pending.remove(&id) {
                        s.clock.witness(ts);
                        for (k, v) in writes {
                            s.store.insert(
                                k,
                                Version {
                                    value: v,
                                    ts,
                                    tx: id,
                                },
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for WrenNode {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        if let WrenNode::Server(s) = self {
            ctx.set_timer(s.period, Msg::StableTick);
        }
    }

    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            WrenNode::Client(c) => Self::client_step(c, ctx),
            WrenNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for WrenNode {
    const NAME: &'static str = "Wren";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        WrenNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            clock: HybridClock::new(id.0 as u8),
            pending: HashMap::new(),
            coordinating: HashMap::new(),
            known_lst: vec![0; topo.num_servers as usize],
            me: id,
            period: if topo.tuning > 0 {
                topo.tuning
            } else {
                STABLE_PERIOD
            },
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        WrenNode::Client(ClientState {
            topo: topo.clone(),
            cache: HashMap::new(),
            dep_ts: 0,
            last_snapshot: 0,
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            WrenNode::Client(c) => c.completed.get(&id),
            WrenNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            WrenNode::Client(c) => c.completed.remove(&id),
            WrenNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadAtResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            // GssResp carries a timestamp only — metadata, zero values.
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::GssReq { .. } | Msg::ReadAt { .. } | Msg::WtxReq { .. }
        )
    }
}

crate::snow_properties! {
    system: "Wren",
    consistency: Causal,
    rounds: 2,
    values: 1,
    nonblocking: true,
    write_tx: true,
    requests: [GssReq, ReadAt, WtxReq],
    value_replies: [ReadAtResp],
    paper_row: "Wren",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::ClientId;
    use cbf_sim::MILLIS;

    fn minimal() -> Cluster<WrenNode> {
        Cluster::new(Topology::minimal(4))
    }

    /// Let the stabilization protocol run for a few periods.
    fn stabilize(c: &mut Cluster<WrenNode>) {
        c.world.run_for(5 * STABLE_PERIOD);
    }

    #[test]
    fn reads_take_exactly_two_rounds_and_one_value() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        stabilize(&mut c);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.audit.rounds, 2, "audit: {:?}", r.audit);
        assert!(r.audit.max_values_per_msg <= 1);
        assert!(!r.audit.blocked);
    }

    #[test]
    fn stabilized_writes_become_visible() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        stabilize(&mut c);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.reads[1].1, w.writes[1].1);
        assert!(c.check().is_ok());
    }

    #[test]
    fn unstabilized_write_is_invisible_to_others_but_visible_to_writer() {
        let mut c = minimal();
        let init0 = c.alloc_value();
        let init1 = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), init0), (Key(1), init1)])
            .unwrap();
        stabilize(&mut c);

        // A fresh write, NOT stabilized: committed above the GSS.
        let w = c.write_tx_auto(ClientId(2), &[Key(0), Key(1)]).unwrap();
        // Another client still reads the old snapshot — causal but stale.
        let other = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(other.reads, vec![(Key(0), init0), (Key(1), init1)]);
        // The writer reads its own cache.
        let own = c.read_tx(ClientId(2), &[Key(0), Key(1)]).unwrap();
        assert_eq!(own.reads[0].1, w.writes[0].1);
        assert_eq!(own.reads[1].1, w.writes[1].1);
        assert!(c.check().is_ok(), "{:?}", c.check().violations);
        assert!(cbf_model::check_read_your_writes(c.history()).is_empty());
    }

    #[test]
    fn snapshot_is_never_torn() {
        // The GSS snapshot can never split a write transaction: both keys
        // commit at one timestamp, and the snapshot either covers it or
        // not.
        for seed in 0..6u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
                if i % 3 == 0 {
                    c.world.run_for(STABLE_PERIOD);
                }
            }
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
            assert!(cbf_model::check_read_atomicity(c.history()).is_empty());
        }
    }

    #[test]
    fn gss_is_monotonic_at_every_server() {
        let mut c = minimal();
        let mut last = 0;
        for i in 0..8u32 {
            c.write_tx_auto(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
            c.world.run_for(STABLE_PERIOD);
            if let WrenNode::Server(s) = c.world.actor(ProcessId(0)) {
                let g = s.gss();
                assert!(g >= last, "GSS went backwards: {g} < {last}");
                last = g;
            }
        }
        assert!(last > 0);
    }

    #[test]
    fn monotonic_reads_hold_across_rots() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        stabilize(&mut c);
        for _ in 0..4 {
            c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
            c.world.run_for(STABLE_PERIOD / 2);
        }
        assert!(cbf_model::check_monotonic_reads(c.history()).is_empty());
        assert!(c.check().is_ok());
    }

    #[test]
    fn visibility_lag_is_bounded_by_stabilization() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0)]).unwrap();
        // Within a couple of stabilization periods the write is readable.
        c.world.run_for(3 * STABLE_PERIOD + MILLIS);
        let r = c.read_tx(ClientId(1), &[Key(0)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
    }
}
