//! Occult [Mehdi et al., NSDI 2017]: "I Can't Believe It's Not Causal!" —
//! causal reads without slowdown cascades, via **client-side validation
//! and retries**.
//!
//! Table 1 row: R ≥ 1, V ≥ 1, non-blocking, W, Per-Client Parallel SI.
//!
//! The structural ideas reproduced here:
//!
//! * every key has a **master** replica (the primary) and asynchronous
//!   **slave** replicas — slaves may lag arbitrarily and never delay
//!   writes;
//! * clients carry *causal timestamps* (per-shard high-water marks);
//!   reads go to the **closest replica** (the slave, when one exists) and
//!   the server answers immediately with whatever it has — servers never
//!   block and are oblivious to staleness;
//! * the **client** validates: a response below its causal timestamp, or
//!   a transactionally fractured pair (detected from the write-set
//!   metadata), triggers a retry at the master — so the round count is
//!   1 in the common case and grows with staleness, never with blocking;
//! * write transactions run two-phase across masters and replicate to
//!   slaves asynchronously afterwards.
//!
//! The deployment must be partially replicated
//! ([`Topology::partially_replicated`]) for the slave path to exist;
//! on a plain sharded topology reads hit masters and validation never
//! fires.

use crate::common::{Completed, LamportClock, MvStore, ProtocolNode, Topology, Version};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::HashMap;

/// One read-response item: value + timestamp + the writing transaction's
/// key-list (for fracture detection).
#[derive(Clone, Debug)]
pub struct Item {
    /// The object.
    pub key: Key,
    /// Its value (`⊥` if this replica has nothing yet).
    pub value: Value,
    /// The writing transaction's timestamp (0 for `⊥`).
    pub ts: u64,
    /// The writing transaction's full key-list.
    pub tx_keys: Vec<Key>,
}

/// Occult message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → replica: read these keys (answered from local state,
    /// stale or not).
    Read { id: TxId, keys: Vec<Key> },
    /// Replica → client: best-effort items.
    ReadResp { id: TxId, items: Vec<Item> },
    /// Client → master: run this write-only transaction.
    WtxReq {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
    },
    /// Master coordinator → master participant: propose and hold.
    Prepare {
        id: TxId,
        writes: Vec<(Key, Value)>,
        tx_keys: Vec<Key>,
        dep_ts: u64,
        coordinator: ProcessId,
    },
    /// Participant → coordinator.
    PrepareResp { id: TxId, proposed: u64 },
    /// Coordinator → participant: commit at `ts`.
    Commit { id: TxId, ts: u64 },
    /// Coordinator → client: committed at `ts`.
    WtxAck { id: TxId, ts: u64 },
    /// Master → slave: asynchronous replication of a committed version.
    Replicate {
        key: Key,
        value: Value,
        ts: u64,
        tx: TxId,
        tx_keys: Vec<Key>,
    },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    got: HashMap<Key, (Value, u64)>,
    meta: Vec<Item>,
    awaiting: usize,
    retries: u32,
    invoked_at: u64,
}

/// Occult client: per-key causal high-water marks.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Causal timestamp: the newest version (per key) this client has
    /// observed or written.
    causal: HashMap<Key, u64>,
    rots: HashMap<TxId, PendingRot>,
    /// In-flight write transactions: id → (written keys, invoked_at).
    wtxs: HashMap<TxId, (Vec<Key>, u64)>,
    completed: HashMap<TxId, Completed>,
}

/// Coordinator-side 2PC state.
#[derive(Clone, Debug)]
struct CoordTx {
    client: ProcessId,
    participants: Vec<ProcessId>,
    proposals: Vec<u64>,
    awaiting: usize,
}

/// A prepared transaction at a master: `(proposal, writes, tx_keys)`.
type PreparedTx = (u64, Vec<(Key, Value)>, Vec<Key>);

/// Occult server: master for its primary keys, slave for the rest.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    me: ProcessId,
    store: MvStore,
    /// Key-lists per (key, ts).
    meta: HashMap<(Key, u64), Vec<Key>>,
    clock: LamportClock,
    pending: HashMap<TxId, PreparedTx>,
    coordinating: HashMap<TxId, CoordTx>,
}

/// An Occult node.
#[derive(Clone, Debug)]
pub enum OccultNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

/// Retry budget before a ROT gives up retrying slaves and targets the
/// masters outright (it converges well before this in practice).
const MAX_RETRIES: u32 = 8;

impl OccultNode {
    /// The replica a client prefers for a key: the last (most remote)
    /// replica — a slave whenever the key is replicated.
    fn preferred_replica(topo: &Topology, k: Key) -> ProcessId {
        // snowlint: allow(handler-unwrap): replicas() is never empty — replication >= 1 by construction, independent of any message state
        *topo.replicas(k).last().unwrap()
    }

    fn send_reads(
        c: &ClientState,
        ctx: &mut Ctx<Msg>,
        id: TxId,
        keys: &[Key],
        to_master: bool,
    ) -> usize {
        let mut per_server: std::collections::BTreeMap<ProcessId, Vec<Key>> = Default::default();
        for &k in keys {
            let server = if to_master {
                c.topo.primary(k)
            } else {
                Self::preferred_replica(&c.topo, k)
            };
            per_server.entry(server).or_default().push(k);
        }
        let n = per_server.len();
        for (server, ks) in per_server {
            ctx.send(server, Msg::Read { id, keys: ks });
        }
        n
    }

    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let awaiting = Self::send_reads(c, ctx, id, &keys, false);
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            got: HashMap::new(),
                            meta: Vec::new(),
                            awaiting,
                            retries: 0,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::ReadResp { id, items } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    for it in &items {
                        let cur = p.got.get(&it.key).map_or(0, |&(_, ts)| ts);
                        if it.ts >= cur {
                            p.got.insert(it.key, (it.value, it.ts));
                        }
                    }
                    p.meta.extend(items);
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        Self::validate_rot(c, id, ctx);
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let coordinator = c.topo.primary(writes[0].0);
                    let dep_ts = c.causal.values().copied().max().unwrap_or(0);
                    let keys: Vec<Key> = writes.iter().map(|&(k, _)| k).collect();
                    ctx.send(coordinator, Msg::WtxReq { id, writes, dep_ts });
                    c.wtxs.insert(id, (keys, ctx.now()));
                }
                Msg::WtxAck { id, ts } => {
                    if let Some((keys, invoked_at)) = c.wtxs.remove(&id) {
                        // The causal timestamp advances for the written
                        // keys: the client's own writes are in its past.
                        for k in keys {
                            let slot = c.causal.entry(k).or_insert(0);
                            *slot = (*slot).max(ts);
                        }
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// Client-side validation: staleness against the causal timestamp
    /// and transactional fracture against the key-list metadata. Any
    /// miss triggers a retry of the lagging keys at their masters.
    fn validate_rot(c: &mut ClientState, id: TxId, ctx: &mut Ctx<Msg>) {
        let Some(p) = c.rots.get_mut(&id) else {
            return;
        };
        // Required floor per key: the client's causal timestamp and the
        // fracture rule (if any returned transaction wrote k at ts, our
        // value for k must be ≥ ts).
        let mut required: HashMap<Key, u64> = HashMap::new();
        for &k in &p.keys {
            let mut need = c.causal.get(&k).copied().unwrap_or(0);
            for it in &p.meta {
                if it.tx_keys.contains(&k) {
                    need = need.max(it.ts);
                }
            }
            required.insert(k, need);
        }
        let stale: Vec<Key> = p
            .keys
            .iter()
            .copied()
            .filter(|k| p.got.get(k).map_or(0, |&(_, ts)| ts) < required[k])
            .collect();
        if !stale.is_empty() && p.retries < MAX_RETRIES {
            p.retries += 1;
            let _ = p;
            let awaiting = Self::send_reads(c, ctx, id, &stale, true);
            if let Some(p) = c.rots.get_mut(&id) {
                p.awaiting = awaiting;
            }
            return;
        }
        // Done: record what we saw in the causal timestamp and respond.
        let Some(p) = c.rots.remove(&id) else {
            return;
        };
        let mut reads = Vec::with_capacity(p.keys.len());
        for &k in &p.keys {
            let (v, ts) = p.got.get(&k).copied().unwrap_or((Value::BOTTOM, 0));
            let slot = c.causal.entry(k).or_insert(0);
            *slot = (*slot).max(ts);
            reads.push((k, v));
        }
        c.completed.insert(
            id,
            Completed {
                id,
                reads,
                invoked_at: p.invoked_at,
                completed_at: ctx.now(),
            },
        );
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::Read { id, keys } => {
                    // Serve whatever is local — stale is the client's
                    // problem; that is the no-slowdown-cascade design.
                    let items: Vec<Item> = keys
                        .iter()
                        .map(|&k| match s.store.latest(k) {
                            Some(v) => Item {
                                key: k,
                                value: v.value,
                                ts: v.ts,
                                tx_keys: s.meta.get(&(k, v.ts)).cloned().unwrap_or_default(),
                            },
                            None => Item {
                                key: k,
                                value: Value::BOTTOM,
                                ts: 0,
                                tx_keys: Vec::new(),
                            },
                        })
                        .collect();
                    ctx.send(env.from, Msg::ReadResp { id, items });
                }
                Msg::WtxReq { id, writes, dep_ts } => {
                    s.clock.witness(dep_ts);
                    let tx_keys: Vec<Key> = writes.iter().map(|&(k, _)| k).collect();
                    let mut per_server: std::collections::BTreeMap<ProcessId, Vec<(Key, Value)>> =
                        Default::default();
                    for &(k, v) in &writes {
                        per_server
                            .entry(s.topo.primary(k))
                            .or_default()
                            .push((k, v));
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    s.coordinating.insert(
                        id,
                        CoordTx {
                            client: env.from,
                            participants: participants.clone(),
                            proposals: Vec::new(),
                            awaiting: participants.len(),
                        },
                    );
                    let me = ctx.me();
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Prepare {
                                id,
                                writes: ws,
                                tx_keys: tx_keys.clone(),
                                dep_ts,
                                coordinator: me,
                            },
                        );
                    }
                }
                Msg::Prepare {
                    id,
                    writes,
                    tx_keys,
                    dep_ts,
                    coordinator,
                } => {
                    s.clock.witness(dep_ts);
                    let proposed = s.clock.tick();
                    s.pending.insert(id, (proposed, writes, tx_keys));
                    ctx.send(coordinator, Msg::PrepareResp { id, proposed });
                }
                Msg::PrepareResp { id, proposed } => {
                    let finished = {
                        let Some(co) = s.coordinating.get_mut(&id) else {
                            continue;
                        };
                        co.proposals.push(proposed);
                        co.awaiting -= 1;
                        co.awaiting == 0
                    };
                    if finished {
                        let Some(co) = s.coordinating.remove(&id) else {
                            continue;
                        };
                        let ts = co.proposals.iter().copied().max().unwrap_or(0);
                        s.clock.witness(ts);
                        for part in &co.participants {
                            ctx.send(*part, Msg::Commit { id, ts });
                        }
                        ctx.send(co.client, Msg::WtxAck { id, ts });
                    }
                }
                Msg::Commit { id, ts } => {
                    if let Some((_, writes, tx_keys)) = s.pending.remove(&id) {
                        s.clock.witness(ts);
                        for (k, v) in writes {
                            s.store.insert(
                                k,
                                Version {
                                    value: v,
                                    ts,
                                    tx: id,
                                },
                            );
                            s.meta.insert((k, ts), tx_keys.clone());
                            // Asynchronous replication to this key's
                            // slaves — writes never wait for it.
                            for replica in s.topo.replicas(k) {
                                if replica != s.me {
                                    ctx.send(
                                        replica,
                                        Msg::Replicate {
                                            key: k,
                                            value: v,
                                            ts,
                                            tx: id,
                                            tx_keys: tx_keys.clone(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                Msg::Replicate {
                    key,
                    value,
                    ts,
                    tx,
                    tx_keys,
                } => {
                    s.clock.witness(ts);
                    s.store.insert(key, Version { value, ts, tx });
                    s.meta.insert((key, ts), tx_keys);
                }
                _ => {}
            }
        }
    }
}

impl Actor for OccultNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            OccultNode::Client(c) => Self::client_step(c, ctx),
            OccultNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for OccultNode {
    const NAME: &'static str = "Occult";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::PerClientPSI;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        OccultNode::Server(ServerState {
            topo: topo.clone(),
            me: id,
            store: MvStore::new(),
            meta: HashMap::new(),
            clock: LamportClock::new(id.0 as u8),
            pending: HashMap::new(),
            coordinating: HashMap::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        OccultNode::Client(ClientState {
            topo: topo.clone(),
            causal: HashMap::new(),
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            OccultNode::Client(c) => c.completed.get(&id),
            OccultNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            OccultNode::Client(c) => c.completed.remove(&id),
            OccultNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadResp { items, .. } => crate::common::max_values_per_object(
                items
                    .iter()
                    .filter(|it| !it.value.is_bottom())
                    .map(|it| it.key),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::Read { .. } | Msg::WtxReq { .. })
    }
}

crate::snow_properties! {
    system: "Occult",
    consistency: PerClientPSI,
    rounds: unbounded,
    values: unbounded,
    nonblocking: true,
    write_tx: true,
    requests: [Read, WtxReq],
    value_replies: [ReadResp],
    paper_row: "Occult",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::{check_causal, check_read_atomicity, ClientId};
    use cbf_sim::MILLIS;

    /// Three servers, two keys, two replicas: key 0 lives on {P0, P1},
    /// key 1 on {P1, P2}. Masters are P0 and P1; P2 is a pure slave, so
    /// holding P1→P2 stalls replication without touching the 2PC links.
    fn replicated() -> Cluster<OccultNode> {
        Cluster::new(Topology::partially_replicated(3, 4, 2, 2))
    }

    #[test]
    fn reads_prefer_slaves_and_validate() {
        let mut c = replicated();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        // Let replication land.
        c.world.run_for(MILLIS);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.reads[1].1, w.writes[1].1);
        assert!(!r.audit.blocked);
    }

    #[test]
    fn stale_slave_triggers_a_retry_round() {
        // Freeze replication (server↔server) so the slaves lag; the
        // writer's own next read must detect staleness via its causal
        // timestamp and retry at the masters.
        let mut c = replicated();
        c.world.hold(ProcessId(1), ProcessId(2)); // key1 replication only
        let w = c.write_tx_auto(ClientId(2), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(2), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[1].1, w.writes[1].1, "RYW via retry");
        assert!(r.audit.rounds >= 2, "expected a retry: {:?}", r.audit);
        assert!(!r.audit.blocked, "servers never block");
        c.world.release(ProcessId(1), ProcessId(2));
        c.world.run_for(MILLIS);
        assert!(check_causal(c.history()).is_ok());
    }

    #[test]
    fn fracture_detection_repairs_split_transactions() {
        // One master commits before the other's replication lands; the
        // key-list metadata forces the reader to fetch the sibling from
        // its master.
        let mut c = replicated();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        c.world.run_for(MILLIS);
        // Freeze key 1's replication: commits apply at the masters but
        // the pure slave P2 stalls.
        c.world.hold(ProcessId(1), ProcessId(2));
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let _ = w;
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        // Whatever mix of slave/master answers arrived, the result must
        // not fracture the write transaction.
        let mut h = c.history().clone();
        let _ = &mut h;
        assert!(
            check_read_atomicity(c.history()).is_empty(),
            "fractured: {:?} (reads {:?})",
            check_read_atomicity(c.history()),
            r.reads
        );
        c.world.release(ProcessId(1), ProcessId(2));
    }

    #[test]
    fn chaotic_schedules_stay_causal() {
        for seed in 0..5u64 {
            let mut c = replicated();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
                if i % 3 == 0 {
                    c.world.run_for(MILLIS);
                }
            }
            c.world.run_chaotic(seed, 300_000);
            assert!(
                check_causal(c.history()).is_ok(),
                "seed {seed}: {:?}",
                check_causal(c.history()).violations
            );
        }
    }

    #[test]
    fn profile_matches_the_table_row() {
        let mut c = replicated();
        for i in 0..8u32 {
            c.write_tx_auto(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId((i + 1) % 4), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.multi_write_supported);
        assert!(p.nonblocking());
        // R ≥ 1: retries may or may not have fired, but never blocking.
        assert!(p.max_rounds >= 1);
    }
}
