//! COPS-GT [Lloyd et al., SOSP 2011]: causal consistency with
//! dependency-tracked single-key writes and up-to-two-round read-only
//! transactions.
//!
//! Table 1 row: R ≤ 2, V ≤ 2, non-blocking, **no** multi-object write
//! transactions, causal consistency.
//!
//! Shape of the protocol (as relevant to the theorem):
//!
//! * every client carries a *dependency context* — the latest version it
//!   has observed per object;
//! * a `put` ships the context with the value; the server stores the
//!   version with its dependencies;
//! * a read-only transaction optimistically fetches the latest version of
//!   every key (round 1), computes the *causally correct version* cut
//!   from the returned dependencies, and — only when the optimistic
//!   result is causally torn — fetches the exact dependency versions in a
//!   second round. Both rounds answer from already-stored versions, so no
//!   server ever blocks.
//!
//! Substitution note (see DESIGN.md): real COPS is geo-replicated; this
//! implementation shards without replication, which preserves exactly the
//! message pattern (rounds, values, blocking) the theorem is about.

use crate::common::{
    Completed, LamportClock, MvStore, ProtocolNode, Topology, Version, Wire, WireError, MAX_RETRIES,
};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::{BTreeSet, HashMap};

/// A dependency: the client observed version `ts` of `key`.
pub type Dep = (Key, u64);

/// One item of a read response.
#[derive(Clone, Debug)]
pub struct Item {
    /// The object.
    pub key: Key,
    /// Its value (`⊥` if never written).
    pub value: Value,
    /// Version timestamp (0 for `⊥`).
    pub ts: u64,
    /// The version's stored dependencies (metadata, not values).
    pub deps: Vec<Dep>,
}

/// COPS message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write transaction (single-object only).
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → server: dependency-tracked single-key put.
    PutReq {
        id: TxId,
        key: Key,
        value: Value,
        deps: Vec<Dep>,
    },
    /// Server → client: put applied at version `ts`.
    PutAck { id: TxId, key: Key, ts: u64 },
    /// Client → server: optimistic read of these keys (round 1).
    GetReq { id: TxId, keys: Vec<Key> },
    /// Server → client: latest versions (round 1 response).
    GetResp { id: TxId, items: Vec<Item> },
    /// Client → server: fetch the exact version `ts` of `key` (round 2).
    GetExactReq { id: TxId, key: Key, ts: u64 },
    /// Server → client: the exact version.
    GetExactResp {
        id: TxId,
        key: Key,
        value: Value,
        ts: u64,
    },
    /// Self-timer: retry outstanding requests of transaction `id` if it
    /// is still pending (armed only when `Topology::retry_after > 0`).
    RetryTick { id: TxId, attempt: u32 },
}

/// In-flight ROT state at the client.
///
/// Waiting *sets* (rather than counters) make response handling
/// idempotent: a duplicated or retried-then-both-delivered response is
/// recognised and dropped instead of double-decrementing a counter.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    got: HashMap<Key, (Value, u64)>,
    deps_seen: Vec<(Key, u64, Vec<Dep>)>,
    /// Servers whose round-1 response is still outstanding.
    round1_waiting: BTreeSet<ProcessId>,
    /// Keys whose round-2 exact fetch is still outstanding.
    round2_waiting: BTreeSet<Key>,
    /// The exact version each round-2 key needs (kept for resend).
    round2_need: HashMap<Key, u64>,
    invoked_at: u64,
}

/// In-flight put state at the client (kept until acked, for resend).
#[derive(Clone, Debug)]
struct PendingWrite {
    key: Key,
    value: Value,
    deps: Vec<Dep>,
    invoked_at: u64,
}

/// COPS client: dependency context plus in-flight transactions.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Latest observed version per key (the COPS "context").
    context: HashMap<Key, u64>,
    rots: HashMap<TxId, PendingRot>,
    puts: HashMap<TxId, PendingWrite>,
    completed: HashMap<TxId, Completed>,
}

/// COPS server: a multi-version store with per-version dependencies.
#[derive(Clone, Debug)]
pub struct ServerState {
    store: MvStore,
    /// Dependencies per (key, ts).
    deps: HashMap<(Key, u64), Vec<Dep>>,
    clock: LamportClock,
    /// Transactions already applied: `tx → (key, ts)`. A re-delivered
    /// `PutReq` (duplicate or client retry racing the ack) is answered
    /// from here instead of creating a second version.
    applied: HashMap<TxId, (Key, u64)>,
}

/// A COPS node.
#[derive(Clone, Debug)]
pub enum CopsNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl CopsNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let groups = c.topo.group_by_primary(&keys);
                    let round1_waiting: BTreeSet<ProcessId> =
                        groups.iter().map(|&(s, _)| s).collect();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::GetReq { id, keys: ks });
                    }
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            got: HashMap::new(),
                            deps_seen: Vec::new(),
                            round1_waiting,
                            round2_waiting: BTreeSet::new(),
                            round2_need: HashMap::new(),
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::InvokeWtx { id, writes } => {
                    // COPS supports only single-object writes; the Cluster
                    // facade rejects multi-writes before injection.
                    let (key, value) = writes[0];
                    let mut deps: Vec<Dep> = c.context.iter().map(|(&k, &t)| (k, t)).collect();
                    deps.sort_unstable();
                    ctx.send(
                        c.topo.primary(key),
                        Msg::PutReq {
                            id,
                            key,
                            value,
                            deps: deps.clone(),
                        },
                    );
                    c.puts.insert(
                        id,
                        PendingWrite {
                            key,
                            value,
                            deps,
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::PutAck { id, key, ts } => {
                    // `remove` makes a duplicated ack a no-op.
                    if let Some(pw) = c.puts.remove(&id) {
                        let slot = c.context.entry(key).or_insert(0);
                        *slot = (*slot).max(ts);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at: pw.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::GetResp { id, items } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    // Duplicate (or already-answered retry): ignore whole
                    // response so round-1 state is touched exactly once
                    // per server.
                    if !p.round1_waiting.remove(&env.from) {
                        continue;
                    }
                    for it in items {
                        p.got.insert(it.key, (it.value, it.ts));
                        p.deps_seen.push((it.key, it.ts, it.deps));
                    }
                    if p.round1_waiting.is_empty() {
                        Self::finish_round_one(c, id, ctx);
                    }
                }
                Msg::GetExactResp { id, key, value, ts } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    if !p.round2_waiting.remove(&key) {
                        continue;
                    }
                    p.got.insert(key, (value, ts));
                    if p.round1_waiting.is_empty() && p.round2_waiting.is_empty() {
                        Self::complete_rot(c, id, ctx.now());
                    }
                }
                Msg::RetryTick { id, attempt } => {
                    let mut live = false;
                    if let Some(p) = c.rots.get(&id) {
                        live = true;
                        if !p.round1_waiting.is_empty() {
                            for (server, ks) in c.topo.group_by_primary(&p.keys) {
                                if p.round1_waiting.contains(&server) {
                                    ctx.send(server, Msg::GetReq { id, keys: ks });
                                }
                            }
                        } else {
                            for &key in &p.round2_waiting {
                                let ts = p.round2_need.get(&key).copied().unwrap_or(0);
                                ctx.send(c.topo.primary(key), Msg::GetExactReq { id, key, ts });
                            }
                        }
                    }
                    if let Some(pw) = c.puts.get(&id) {
                        live = true;
                        ctx.send(
                            c.topo.primary(pw.key),
                            Msg::PutReq {
                                id,
                                key: pw.key,
                                value: pw.value,
                                deps: pw.deps.clone(),
                            },
                        );
                    }
                    if live {
                        Self::arm_retry(c, id, attempt + 1, ctx);
                    }
                }
                _ => {}
            }
        }
    }

    /// Arm (or re-arm, with exponential backoff) the per-transaction
    /// retry timer. No-op when retries are disabled or exhausted.
    fn arm_retry(c: &ClientState, id: TxId, attempt: u32, ctx: &mut Ctx<Msg>) {
        if c.topo.retry_after == 0 || attempt >= MAX_RETRIES {
            return;
        }
        let delay = c.topo.retry_after << attempt;
        ctx.set_timer(delay, Msg::RetryTick { id, attempt });
    }

    /// After all round-1 responses: compute the causally-correct-version
    /// cut; fetch exact versions where the optimistic read is torn.
    fn finish_round_one(c: &mut ClientState, id: TxId, ctx: &mut Ctx<Msg>) {
        let Some(p) = c.rots.get_mut(&id) else {
            return;
        };
        // ccv[k] = newest version of k that anything we saw (returned
        // versions' deps, or our own context) causally requires.
        let mut ccv: HashMap<Key, u64> = HashMap::new();
        for (_, _, deps) in &p.deps_seen {
            for &(k, t) in deps {
                let slot = ccv.entry(k).or_insert(0);
                *slot = (*slot).max(t);
            }
        }
        for (&k, &t) in &c.context {
            let slot = ccv.entry(k).or_insert(0);
            *slot = (*slot).max(t);
        }
        let mut refetch: Vec<(Key, u64)> = Vec::new();
        for &k in &p.keys {
            let have = p.got.get(&k).map_or(0, |&(_, ts)| ts);
            if let Some(&need) = ccv.get(&k) {
                if need > have {
                    refetch.push((k, need));
                }
            }
        }
        if refetch.is_empty() {
            Self::complete_rot(c, id, ctx.now());
            return;
        }
        p.round2_waiting = refetch.iter().map(|&(k, _)| k).collect();
        p.round2_need = refetch.iter().copied().collect();
        for (key, ts) in refetch {
            ctx.send(c.topo.primary(key), Msg::GetExactReq { id, key, ts });
        }
    }

    fn complete_rot(c: &mut ClientState, id: TxId, now: u64) {
        let Some(p) = c.rots.remove(&id) else {
            return;
        };
        let mut reads: Vec<(Key, Value)> = Vec::with_capacity(p.keys.len());
        for &k in &p.keys {
            let (v, ts) = p.got.get(&k).copied().unwrap_or((Value::BOTTOM, 0));
            reads.push((k, v));
            if ts > 0 {
                let slot = c.context.entry(k).or_insert(0);
                *slot = (*slot).max(ts);
            }
        }
        c.completed.insert(
            id,
            Completed {
                id,
                reads,
                invoked_at: p.invoked_at,
                completed_at: now,
            },
        );
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::PutReq {
                    id,
                    key,
                    value,
                    deps,
                } => {
                    // Idempotence: a re-delivered put (duplicate or retry)
                    // re-acks the already-applied version instead of
                    // minting a second one.
                    if let Some(&(k, ts)) = s.applied.get(&id) {
                        ctx.send(env.from, Msg::PutAck { id, key: k, ts });
                        continue;
                    }
                    for &(_, t) in &deps {
                        s.clock.witness(t);
                    }
                    let ts = s.clock.tick();
                    s.store.insert(key, Version { value, ts, tx: id });
                    s.deps.insert((key, ts), deps);
                    s.applied.insert(id, (key, ts));
                    ctx.send(env.from, Msg::PutAck { id, key, ts });
                }
                Msg::GetReq { id, keys } => {
                    let items: Vec<Item> = keys
                        .iter()
                        .map(|&k| match s.store.latest(k) {
                            Some(v) => Item {
                                key: k,
                                value: v.value,
                                ts: v.ts,
                                deps: s.deps.get(&(k, v.ts)).cloned().unwrap_or_default(),
                            },
                            None => Item {
                                key: k,
                                value: Value::BOTTOM,
                                ts: 0,
                                deps: Vec::new(),
                            },
                        })
                        .collect();
                    ctx.send(env.from, Msg::GetResp { id, items });
                }
                Msg::GetExactReq { id, key, ts } => {
                    // The requested version is a dependency some client
                    // observed, so it was acked and exists here. Under
                    // fault injection we still answer defensively: the
                    // newest version at-or-before `ts` is the causally
                    // closest substitute if the exact one is missing.
                    let (value, ts) = match s.store.at_exact(key, ts) {
                        Some(v) => (v.value, v.ts),
                        None => s
                            .store
                            .latest_at(key, ts)
                            .map_or((Value::BOTTOM, 0), |v| (v.value, v.ts)),
                    };
                    ctx.send(env.from, Msg::GetExactResp { id, key, value, ts });
                }
                _ => {}
            }
        }
    }
}

impl Actor for CopsNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            CopsNode::Client(c) => Self::client_step(c, ctx),
            CopsNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for CopsNode {
    const NAME: &'static str = "COPS";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn server(_topo: &Topology, id: ProcessId) -> Self {
        CopsNode::Server(ServerState {
            store: MvStore::new(),
            deps: HashMap::new(),
            clock: LamportClock::new(id.0 as u8),
            applied: HashMap::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        CopsNode::Client(ClientState {
            topo: topo.clone(),
            context: HashMap::new(),
            rots: HashMap::new(),
            puts: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            CopsNode::Client(c) => c.completed.get(&id),
            CopsNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            CopsNode::Client(c) => c.completed.remove(&id),
            CopsNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::GetResp { items, .. } => crate::common::max_values_per_object(
                items
                    .iter()
                    .filter(|it| !it.value.is_bottom())
                    .map(|it| it.key),
            ),
            Msg::GetExactResp { .. } => 1,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::GetReq { .. } | Msg::GetExactReq { .. } | Msg::PutReq { .. }
        )
    }
}

impl Wire for Item {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.value.encode(out);
        self.ts.encode(out);
        self.deps.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Item {
            key: Key::decode(buf)?,
            value: Value::decode(buf)?,
            ts: u64::decode(buf)?,
            deps: Vec::decode(buf)?,
        })
    }
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::InvokeRot { id, keys } => {
                out.push(0);
                id.encode(out);
                keys.encode(out);
            }
            Msg::InvokeWtx { id, writes } => {
                out.push(1);
                id.encode(out);
                writes.encode(out);
            }
            Msg::PutReq {
                id,
                key,
                value,
                deps,
            } => {
                out.push(2);
                id.encode(out);
                key.encode(out);
                value.encode(out);
                deps.encode(out);
            }
            Msg::PutAck { id, key, ts } => {
                out.push(3);
                id.encode(out);
                key.encode(out);
                ts.encode(out);
            }
            Msg::GetReq { id, keys } => {
                out.push(4);
                id.encode(out);
                keys.encode(out);
            }
            Msg::GetResp { id, items } => {
                out.push(5);
                id.encode(out);
                items.encode(out);
            }
            Msg::GetExactReq { id, key, ts } => {
                out.push(6);
                id.encode(out);
                key.encode(out);
                ts.encode(out);
            }
            Msg::GetExactResp { id, key, value, ts } => {
                out.push(7);
                id.encode(out);
                key.encode(out);
                value.encode(out);
                ts.encode(out);
            }
            Msg::RetryTick { id, attempt } => {
                out.push(8);
                id.encode(out);
                attempt.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => Msg::InvokeRot {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
            },
            1 => Msg::InvokeWtx {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
            },
            2 => Msg::PutReq {
                id: TxId::decode(buf)?,
                key: Key::decode(buf)?,
                value: Value::decode(buf)?,
                deps: Vec::decode(buf)?,
            },
            3 => Msg::PutAck {
                id: TxId::decode(buf)?,
                key: Key::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            4 => Msg::GetReq {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
            },
            5 => Msg::GetResp {
                id: TxId::decode(buf)?,
                items: Vec::decode(buf)?,
            },
            6 => Msg::GetExactReq {
                id: TxId::decode(buf)?,
                key: Key::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            7 => Msg::GetExactResp {
                id: TxId::decode(buf)?,
                key: Key::decode(buf)?,
                value: Value::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            8 => Msg::RetryTick {
                id: TxId::decode(buf)?,
                attempt: u32::decode(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "cops::Msg",
                    tag,
                })
            }
        })
    }
}

crate::snow_properties! {
    system: "COPS",
    consistency: Causal,
    rounds: 2,
    values: 2,
    nonblocking: true,
    write_tx: false,
    requests: [GetReq, GetExactReq, PutReq],
    value_replies: [GetResp, GetExactResp],
    paper_row: "COPS",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Cluster, TxError};
    use cbf_model::ClientId;

    fn minimal() -> Cluster<CopsNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn multi_write_is_rejected() {
        let mut c = minimal();
        let err = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap_err();
        assert_eq!(err, TxError::MultiWriteUnsupported);
    }

    #[test]
    fn single_writes_and_one_round_reads() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0)]).unwrap();
        c.write_tx_auto(ClientId(0), &[Key(1)]).unwrap();
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        // Quiescent system: the optimistic round suffices.
        assert_eq!(r.audit.rounds, 1);
        assert!(!r.audit.blocked);
        assert!(c.check().is_ok());
    }

    #[test]
    fn torn_read_takes_a_second_round() {
        // Build a torn situation: the reader's optimistic request to p0
        // is served with the old X0, then the writer's dependent put
        // lands on p1 before the reader's request to p1 is delivered.
        let mut c = minimal();
        let writer = ClientId(0);
        let v_old = c.alloc_value();
        c.write_tx(writer, &[(Key(0), v_old)]).unwrap();

        let reader = ClientId(1);
        let rpid = c.topo.client_pid(reader);
        c.world.hold(rpid, ProcessId(1));
        let id = c.alloc_tx();
        c.world.inject(
            rpid,
            Msg::InvokeRot {
                id,
                keys: vec![Key(0), Key(1)],
            },
        );
        c.world.run_for(cbf_sim::MILLIS); // p0 answers; p1 request frozen

        // Writer: new X0, then X1 depending on it.
        let v0_new = c.alloc_value();
        let v1_new = c.alloc_value();
        c.write_tx(writer, &[(Key(0), v0_new)]).unwrap();
        c.write_tx(writer, &[(Key(1), v1_new)]).unwrap();

        // Release: p1 returns X1=new with dep X0@new → second round.
        c.world.release(rpid, ProcessId(1));
        c.world
            .run_until_within(cbf_sim::SECONDS, |w| w.actor(rpid).completed(id).is_some());
        let done = c.world.actor_mut(rpid).take_completed(id).unwrap();
        // The reader must see the new X0 (fetched in round 2), not v_old.
        assert_eq!(done.reads, vec![(Key(0), v0_new), (Key(1), v1_new)]);
    }

    #[test]
    fn context_gives_read_your_writes() {
        let mut c = minimal();
        let v = c.alloc_value();
        c.write_tx(ClientId(2), &[(Key(0), v)]).unwrap();
        let r = c.read_tx(ClientId(2), &[Key(0)]).unwrap();
        assert_eq!(r.reads, vec![(Key(0), v)]);
        assert!(cbf_model::check_read_your_writes(c.history()).is_empty());
    }

    #[test]
    fn history_is_causal_under_chaotic_schedules() {
        // Issue a mixed workload, then let the chaotic scheduler deliver
        // in random orders; the completed history must stay causal.
        for seed in 0..5u64 {
            let mut c = minimal();
            for i in 0..12u32 {
                let cl = ClientId(i % 4);
                if i % 3 == 0 {
                    c.write_tx_auto(cl, &[Key(i % 2)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            c.world.run_chaotic(seed, 100_000);
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
        }
    }

    #[test]
    fn profile_shows_no_write_tx_and_at_most_two_rounds() {
        let mut c = minimal();
        for i in 0..8u32 {
            c.write_tx_auto(ClientId(i % 2), &[Key(i % 2)]).unwrap();
            c.read_tx(ClientId(2 + (i % 2)), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.max_rounds <= 2, "rounds {}", p.max_rounds);
        assert!(!p.multi_write_supported);
        assert!(p.nonblocking());
    }
}
