//! The N + R + W design sketched in §3.4 of the paper: one-round,
//! non-blocking read-only transactions **and** multi-object write
//! transactions — paying with messages that carry "a prohibitively big
//! amount of data" (the paper's words): every write ships the whole
//! transaction *and* the writer's full causal past (with values), and
//! every read response ships them back.
//!
//! Table 1 has no such system; the paper describes it as an augmented
//! COPS and leaves its efficiency as an open problem. The theorem says
//! the design must violate one-value (V) — and the audit measures
//! exactly that: `max_values_per_msg` grows with the causal history.
//!
//! ### The resolution rule (and why naive timestamp-max is wrong)
//!
//! The paper's sketch says the client "identifies, for each object, the
//! last written value". Picking, per key, the candidate with the highest
//! timestamp is **not** causally consistent across a client session:
//! if the client returned `(X1@t_a, X0@t_c)` and later learns a
//! concurrent transaction `T` with `t_a < ts(T) < t_c` that writes both
//! objects, no serialization can place `T` — before the earlier read it
//! invalidates the `X1@t_a` result, after the later read it invalidates
//! the per-key-max pick. (This workspace's causal checker found that
//! counterexample; see DESIGN.md.)
//!
//! The correct client-side rule is a **session log**: the client keeps
//! the set of transactions it has observed, applied in *learn order*
//! (ties within one response broken by timestamp), and answers reads
//! from the folded store. Appending is always causally legal because
//! dependency payloads are transitively complete: a newly learned
//! transaction can never be causally older than one already applied.
//! Each client owns its log — causal consistency does not require
//! clients to agree on the order of concurrent transactions.

use crate::common::{Completed, LamportClock, ProtocolNode, Topology};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::{HashMap, HashSet};

/// One transaction, as carried in dependency payloads and session logs:
/// its id, timestamp, and full write-set (values included).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxDep {
    /// The transaction.
    pub tx: TxId,
    /// Its (client-assigned) Lamport timestamp.
    pub ts: u64,
    /// Everything it wrote.
    pub writes: Vec<(Key, Value)>,
}

/// One read-response item: the base version plus its fat metadata.
#[derive(Clone, Debug)]
pub struct FatItem {
    /// The object.
    pub key: Key,
    /// The writing transaction of the latest version here (`None` if the
    /// key was never written).
    pub record: Option<TxDep>,
    /// The writer's causal past at write time (transitively complete).
    pub deps: Vec<TxDep>,
}

/// COPS-RW message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → server: one-round fat read.
    FatRead { id: TxId, keys: Vec<Key> },
    /// Server → client: latest fat records.
    FatReadResp { id: TxId, items: Vec<FatItem> },
    /// Client → server: fat write — the transaction plus the writer's
    /// whole causal past.
    FatWrite { record: TxDep, deps: Vec<TxDep> },
    /// Server → client: applied.
    FatWriteAck { id: TxId },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    items: Vec<FatItem>,
    awaiting: usize,
    invoked_at: u64,
}

/// In-flight write: `(record, awaiting, invoked_at)`.
type PendingWtx = (TxDep, usize, u64);

/// COPS-RW client: the session log and its folded store.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    clock: LamportClock,
    /// Transactions applied to this session, in application order.
    log: Vec<TxDep>,
    /// Which transactions are in the log.
    applied: HashSet<TxId>,
    /// The folded store: key → value after applying the log in order.
    store: HashMap<Key, Value>,
    rots: HashMap<TxId, PendingRot>,
    wtxs: HashMap<TxId, PendingWtx>,
    completed: HashMap<TxId, Completed>,
}

impl ClientState {
    /// Append a transaction to the session (no-op if already applied).
    fn absorb(&mut self, dep: &TxDep) {
        if self.applied.insert(dep.tx) {
            self.clock.witness(dep.ts);
            for &(k, v) in &dep.writes {
                self.store.insert(k, v);
            }
            self.log.push(dep.clone());
        }
    }

    /// Absorb a batch of candidate transactions: new ones are appended
    /// in timestamp order (which extends causality within the batch).
    fn absorb_batch(&mut self, mut batch: Vec<TxDep>) {
        batch.sort_by_key(|d| d.ts);
        batch.dedup_by_key(|d| d.tx);
        for dep in &batch {
            self.absorb(dep);
        }
    }
}

/// COPS-RW server: latest fat record per key.
#[derive(Clone, Debug)]
pub struct ServerState {
    /// Per key: the latest (by ts) write transaction and its deps.
    latest: HashMap<Key, (TxDep, Vec<TxDep>)>,
}

/// A COPS-RW node.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // one node per process; size is fine
pub enum CopsRwNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl CopsRwNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let groups = c.topo.group_by_primary(&keys);
                    let awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::FatRead { id, keys: ks });
                    }
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            items: Vec::new(),
                            awaiting,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::FatReadResp { id, items } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    p.items.extend(items);
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        Self::resolve_rot(c, id, ctx.now());
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let ts = c.clock.tick();
                    let record = TxDep { tx: id, ts, writes };
                    // The dependency payload: the client's entire session
                    // log — the "prohibitively big amount of data".
                    let deps = c.log.clone();
                    let mut servers: Vec<ProcessId> = record
                        .writes
                        .iter()
                        .map(|&(k, _)| c.topo.primary(k))
                        .collect();
                    servers.sort_unstable();
                    servers.dedup();
                    for &server in &servers {
                        ctx.send(
                            server,
                            Msg::FatWrite {
                                record: record.clone(),
                                deps: deps.clone(),
                            },
                        );
                    }
                    c.wtxs.insert(id, (record, servers.len(), ctx.now()));
                }
                Msg::FatWriteAck { id } => {
                    let finished = {
                        let Some(w) = c.wtxs.get_mut(&id) else {
                            continue;
                        };
                        w.1 -= 1;
                        w.1 == 0
                    };
                    if finished {
                        let Some((record, _, invoked_at)) = c.wtxs.remove(&id) else {
                            continue;
                        };
                        c.absorb(&record);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// All responses in: absorb every learned transaction into the
    /// session log, then answer from the folded store.
    fn resolve_rot(c: &mut ClientState, id: TxId, now: u64) {
        let Some(p) = c.rots.remove(&id) else {
            return;
        };
        let mut batch = Vec::new();
        for item in p.items {
            if let Some(rec) = item.record {
                batch.push(rec);
            }
            batch.extend(item.deps);
        }
        c.absorb_batch(batch);
        let reads: Vec<(Key, Value)> = p
            .keys
            .iter()
            .map(|&k| (k, c.store.get(&k).copied().unwrap_or(Value::BOTTOM)))
            .collect();
        c.completed.insert(
            id,
            Completed {
                id,
                reads,
                invoked_at: p.invoked_at,
                completed_at: now,
            },
        );
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::FatRead { id, keys } => {
                    let items: Vec<FatItem> = keys
                        .iter()
                        .map(|&k| match s.latest.get(&k) {
                            Some((rec, deps)) => FatItem {
                                key: k,
                                record: Some(rec.clone()),
                                deps: deps.clone(),
                            },
                            None => FatItem {
                                key: k,
                                record: None,
                                deps: Vec::new(),
                            },
                        })
                        .collect();
                    ctx.send(env.from, Msg::FatReadResp { id, items });
                }
                Msg::FatWrite { record, deps } => {
                    for &(k, _) in &record.writes {
                        let newer = s.latest.get(&k).is_none_or(|(cur, _)| record.ts > cur.ts);
                        if newer {
                            s.latest.insert(k, (record.clone(), deps.clone()));
                        }
                    }
                    ctx.send(env.from, Msg::FatWriteAck { id: record.tx });
                }
                _ => {}
            }
        }
    }
}

impl Actor for CopsRwNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            CopsRwNode::Client(c) => Self::client_step(c, ctx),
            CopsRwNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for CopsRwNode {
    const NAME: &'static str = "COPS-RW (§3.4)";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(_topo: &Topology, _id: ProcessId) -> Self {
        CopsRwNode::Server(ServerState {
            latest: HashMap::new(),
        })
    }

    fn client(topo: &Topology, id: ProcessId) -> Self {
        CopsRwNode::Client(ClientState {
            topo: topo.clone(),
            clock: LamportClock::new(id.0 as u8),
            log: Vec::new(),
            applied: HashSet::new(),
            store: HashMap::new(),
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            CopsRwNode::Client(c) => c.completed.get(&id),
            CopsRwNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            CopsRwNode::Client(c) => c.completed.remove(&id),
            CopsRwNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            // snowflow: values(unbounded): fat replies ship whole dependency records, so versions-per-object grows with the write history
            Msg::FatReadResp { items, .. } => {
                crate::common::max_values_per_object(items.iter().flat_map(|it| {
                    it.record
                        .iter()
                        .flat_map(|r| r.writes.iter().map(|&(k, _)| k))
                        .chain(
                            it.deps
                                .iter()
                                .flat_map(|d| d.writes.iter().map(|&(k, _)| k)),
                        )
                }))
            }
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::FatRead { .. } | Msg::FatWrite { .. })
    }
}

/// Diagnostic: the client's session-log length (how much causal history
/// its write payloads will carry).
pub fn session_log_len(node: &CopsRwNode) -> usize {
    match node {
        CopsRwNode::Client(c) => c.log.len(),
        CopsRwNode::Server(_) => 0,
    }
}

crate::snow_properties! {
    system: "COPS-RW (§3.4)",
    consistency: Causal,
    rounds: 1,
    values: unbounded,
    nonblocking: true,
    write_tx: true,
    requests: [FatRead, FatWrite],
    value_replies: [FatReadResp],
    paper_row: none,
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::ClientId;

    fn minimal() -> Cluster<CopsRwNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn one_round_nonblocking_write_txs() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        assert_eq!(w.audit.rounds, 1);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.audit.rounds, 1);
        assert!(!r.audit.blocked);
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert!(c.check().is_ok());
    }

    #[test]
    fn sibling_payloads_repair_torn_snapshots() {
        // Apply a multi-write at p0 but freeze its delivery to p1: the
        // reader's p1 response is stale, but p0's record carries the
        // whole transaction — resolved client-side.
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();

        let writer = c.topo.client_pid(ClientId(0));
        c.world.hold(writer, cbf_sim::ProcessId(1));
        let id = c.alloc_tx();
        let (v0, v1) = (c.alloc_value(), c.alloc_value());
        c.world.inject(
            writer,
            Msg::InvokeWtx {
                id,
                writes: vec![(Key(0), v0), (Key(1), v1)],
            },
        );
        c.world.run_for(cbf_sim::MILLIS); // p0 has it; p1 does not

        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        // The fat record from p0 carries the sibling X1 value.
        assert_eq!(r.reads, vec![(Key(0), v0), (Key(1), v1)]);
        // And the message was decidedly not one-value.
        assert!(r.audit.max_values_per_msg > 1, "audit: {:?}", r.audit);
    }

    #[test]
    fn straddling_concurrent_multiwrite_stays_serializable() {
        // Regression for the anomaly the checker found in the naive
        // per-key-max resolution: c1 reads (old X1, new X0), then a
        // concurrent multi-write with an in-between timestamp surfaces.
        // The session log places it after the earlier read.
        let mut c = minimal();
        // T2-analogue: a multi-write establishing (X0, X1).
        c.write_tx_auto(ClientId(3), &[Key(0), Key(1)]).unwrap();
        // c2 observes it (so its later write is causally after).
        c.read_tx(ClientId(2), &[Key(0), Key(1)]).unwrap();

        // c0 writes X0 twice — its clock races ahead of c2's.
        c.write_tx_auto(ClientId(0), &[Key(0)]).unwrap();
        let w9 = c.write_tx_auto(ClientId(0), &[Key(0)]).unwrap();

        // c1 reads now: (new X0 from c0, old X1).
        let r10 = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r10.reads[0].1, w9.writes[0].1);

        // c2's concurrent multi-write to both keys, with a Lamport ts
        // between the old X1 and c0's latest X0.
        let w11 = c.write_tx_auto(ClientId(2), &[Key(0), Key(1)]).unwrap();

        // c1 reads again: whatever it returns must keep its session
        // serializable — the checker decides.
        let r13 = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        let _ = (w11, r13);
        assert!(c.check().is_ok(), "{:?}", c.check().violations);
    }

    #[test]
    fn message_values_grow_with_causal_history() {
        // The cost §3.4 predicts: the dependency payload grows as the
        // session log accumulates.
        let mut c = minimal();
        let mut last = 0;
        for _ in 0..6u32 {
            c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
            let r = c.read_tx(ClientId(0), &[Key(0), Key(1)]).unwrap();
            let vals = r.audit.max_values_per_msg;
            assert!(vals >= last.min(3), "payload shrank: {vals} < {last}");
            last = vals;
        }
        assert!(last > 1, "payload never grew: {last}");
        // The writer's session log has everything it ever did.
        let pid = c.topo.client_pid(ClientId(0));
        assert!(session_log_len(c.world.actor(pid)) >= 6);
    }

    #[test]
    fn chaotic_schedules_stay_causal() {
        for seed in 0..6u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            c.world.run_chaotic(seed, 200_000);
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
        }
    }

    #[test]
    fn profile_shows_n_r_w_but_not_v() {
        let mut c = minimal();
        for i in 0..8u32 {
            c.write_tx_auto(ClientId(i % 2), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId(2 + i % 2), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.one_round());
        assert!(p.nonblocking());
        assert!(p.multi_write_supported);
        assert!(!p.one_value(), "V must fail: max_values={}", p.max_values);
        assert!(!p.claims_the_impossible());
    }
}
