//! A Spanner-like protocol [Corbett et al., TOCS 2013]: the R + V + W
//! corner — one-round, one-value reads and multi-object write
//! transactions, paying by **blocking**: servers defer read responses
//! until their safe time passes the read timestamp, and commits wait out
//! the clock-uncertainty bound.
//!
//! Table 1 row: R = 1, V = 1, blocking, W, strict serializability (which
//! implies causal consistency — so the theorem applies, and blocking is
//! the property this design gives up).
//!
//! TrueTime is simulated on virtual time ([`crate::common::TrueTime`]):
//! every process owns a clock with a fixed skew bounded by ε, and the
//! `TT.now()` interval is honest. Substitution note (DESIGN.md): the
//! commit-wait and safe-time logic depend only on the ε bound, which the
//! simulated oracle provides exactly.
//!
//! * **Write transactions**: 2PC. Participants choose prepare timestamps
//!   above their local clock; the coordinator commits at
//!   `s = max(prepare timestamps, TT.now().latest)` and **commit-waits**
//!   until `TT.after(s)` before acking and releasing the commit.
//! * **Read-only transactions**: the client picks
//!   `s_read = TT.now().latest` and reads every key at `s_read` in one
//!   round. A server answers only when its *safe time*
//!   `t_safe = min(local clock, min prepared ts − 1)` has passed
//!   `s_read`; otherwise it parks the read — that is the blocking.

use crate::common::{
    Completed, MvStore, ProtocolNode, Topology, TrueTime, Version, Wire, WireError, MAX_RETRIES,
};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId, Time, MICROS};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The advertised TrueTime uncertainty bound ε (virtual ns).
pub const EPSILON: u64 = 250 * MICROS;

/// How often a server with parked work re-checks its clock.
const POLL: Time = 20 * MICROS;

/// How long a coordinator waits for a participant's `CommitAck` before
/// re-sending `Commit` (well above one RTT, so fault-free runs never
/// resend). A lost commit would otherwise pin the participant's
/// `prepared` floor and stall `t_safe` forever.
const COMMIT_RESEND: Time = 500 * MICROS;

/// Spanner-like message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },

    /// Client → server: read these keys at timestamp `at` (one round).
    ReadAt { id: TxId, keys: Vec<Key>, at: u64 },
    /// Server → client: one value per key at `at`.
    ReadAtResp {
        id: TxId,
        reads: Vec<(Key, Value, u64)>,
    },

    /// Client → coordinator: run this write-only transaction.
    WtxReq { id: TxId, writes: Vec<(Key, Value)> },
    /// Coordinator → participant: prepare.
    Prepare {
        id: TxId,
        writes: Vec<(Key, Value)>,
        coordinator: ProcessId,
    },
    /// Participant → coordinator: prepared at `ts`.
    PrepareResp { id: TxId, ts: u64 },
    /// Coordinator → participant: commit at `ts` (after commit-wait).
    Commit { id: TxId, ts: u64 },
    /// Participant → coordinator: commit applied (stops the re-drive).
    CommitAck { id: TxId },
    /// Coordinator → client: committed at `ts`.
    WtxAck { id: TxId, ts: u64 },

    /// Timer: re-check parked reads / finish commit-wait.
    Poll,
    /// Self-timer: retry outstanding requests of transaction `id` if it
    /// is still pending (armed only when `Topology::retry_after > 0`).
    RetryTick { id: TxId, attempt: u32 },
}

/// A read parked at a server until its safe time passes `at`.
#[derive(Clone, Debug)]
struct ParkedRead {
    client: ProcessId,
    id: TxId,
    keys: Vec<Key>,
    at: u64,
}

/// Coordinator-side 2PC state. `responded` (a set, not a counter) makes
/// duplicated prepare responses idempotent; `per_server` is kept so a
/// client retry can re-drive lost `Prepare` messages.
#[derive(Clone, Debug)]
struct CoordTx {
    client: ProcessId,
    participants: Vec<ProcessId>,
    per_server: BTreeMap<ProcessId, Vec<(Key, Value)>>,
    prepare_ts: Vec<u64>,
    responded: BTreeSet<ProcessId>,
}

/// A commit decided but still in its commit-wait window.
#[derive(Clone, Debug)]
struct WaitingCommit {
    client: ProcessId,
    participants: Vec<ProcessId>,
    ts: u64,
}

/// A released commit being re-driven until every participant acks.
#[derive(Clone, Debug)]
struct CommitDrive {
    unacked: BTreeSet<ProcessId>,
    ts: u64,
    sent_at: Time,
}

/// Spanner-like server.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    tt: TrueTime,
    /// Highest timestamp used locally (keeps prepare ts monotonic).
    high_water: u64,
    /// Prepared, undecided transactions: tx → (prepare ts, writes).
    prepared: HashMap<TxId, (u64, Vec<(Key, Value)>)>,
    coordinating: HashMap<TxId, CoordTx>,
    commit_waits: HashMap<TxId, WaitingCommit>,
    parked: Vec<ParkedRead>,
    poll_armed: bool,
    /// Participant side: transactions already committed here, with their
    /// commit ts. A re-delivered `Prepare` re-acks from this; a
    /// re-delivered `Commit` is ignored.
    decided: HashMap<TxId, u64>,
    /// Coordinator side: transactions fully acked, for re-acking a
    /// retried `WtxReq` whose ack was lost.
    coord_done: HashMap<TxId, u64>,
    /// Coordinator side: commits released but not yet acked by every
    /// participant; re-driven from the durable decision (as real Spanner
    /// re-drives commits from the Paxos log), because a lost `Commit`
    /// would stall the participant's `t_safe` forever.
    committing: HashMap<TxId, CommitDrive>,
}

/// Spanner-like client: owns a TrueTime clock for read timestamps.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    tt: TrueTime,
    rots: HashMap<TxId, PendingRot>,
    wtxs: HashMap<TxId, PendingWtx>,
    completed: HashMap<TxId, Completed>,
}

/// In-flight ROT at the client. The read timestamp is kept so a retried
/// `ReadAt` re-reads at the *same* snapshot (idempotent); the waiting
/// set makes duplicated responses no-ops.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    at: u64,
    got: HashMap<Key, Value>,
    waiting: BTreeSet<ProcessId>,
    invoked_at: u64,
}

/// In-flight write transaction at the client (kept for resend).
#[derive(Clone, Debug)]
struct PendingWtx {
    writes: Vec<(Key, Value)>,
    invoked_at: u64,
}

/// A Spanner-like node.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // one node per process; size is fine
pub enum SpannerNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl ServerState {
    /// Safe time: reads at or below this are final here.
    fn t_safe(&self, now: Time) -> u64 {
        let clock = self.tt.local(now);
        let min_prepared = self
            .prepared
            .values()
            .map(|&(ts, _)| ts)
            .min()
            .unwrap_or(u64::MAX);
        clock.min(min_prepared.saturating_sub(1))
    }

    fn arm_poll(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.poll_armed {
            self.poll_armed = true;
            ctx.set_timer(POLL, Msg::Poll);
        }
    }

    /// Serve every parked read whose timestamp is now safe, and release
    /// every commit whose wait has elapsed.
    fn drain(&mut self, ctx: &mut Ctx<Msg>) {
        let now = ctx.now();
        let safe = self.t_safe(now);
        let mut still_parked = Vec::new();
        for r in std::mem::take(&mut self.parked) {
            if r.at <= safe {
                let reads = self.read_at(&r.keys, r.at);
                ctx.send(r.client, Msg::ReadAtResp { id: r.id, reads });
            } else {
                still_parked.push(r);
            }
        }
        self.parked = still_parked;

        let mut ready: Vec<TxId> = self
            .commit_waits
            .iter()
            .filter(|(_, w)| self.tt.after(now, w.ts))
            .map(|(&id, _)| id)
            .collect();
        ready.sort_unstable();
        for id in ready {
            let Some(w) = self.commit_waits.remove(&id) else {
                continue;
            };
            for part in &w.participants {
                ctx.send(*part, Msg::Commit { id, ts: w.ts });
            }
            self.committing.insert(
                id,
                CommitDrive {
                    unacked: w.participants.iter().copied().collect(),
                    ts: w.ts,
                    sent_at: now,
                },
            );
            self.coord_done.insert(id, w.ts);
            ctx.send(w.client, Msg::WtxAck { id, ts: w.ts });
        }

        // Re-drive commits whose acks are overdue (lost in flight).
        let mut overdue: Vec<TxId> = self
            .committing
            .iter()
            .filter(|(_, d)| now.saturating_sub(d.sent_at) >= COMMIT_RESEND)
            .map(|(&id, _)| id)
            .collect();
        overdue.sort_unstable();
        for id in overdue {
            if let Some(d) = self.committing.get_mut(&id) {
                d.sent_at = now;
                for part in d.unacked.iter().copied().collect::<Vec<_>>() {
                    ctx.send(part, Msg::Commit { id, ts: d.ts });
                }
            }
        }

        self.poll_armed = false;
        if !self.parked.is_empty() || !self.commit_waits.is_empty() || !self.committing.is_empty() {
            self.arm_poll(ctx);
        }
    }

    fn read_at(&self, keys: &[Key], at: u64) -> Vec<(Key, Value, u64)> {
        keys.iter()
            .map(|&k| match self.store.latest_at(k, at) {
                Some(v) => (k, v.value, v.ts),
                None => (k, Value::BOTTOM, 0),
            })
            .collect()
    }
}

impl SpannerNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    // One round: read everywhere at TT.now().latest.
                    let at = c.tt.now_interval(ctx.now()).1;
                    let groups = c.topo.group_by_primary(&keys);
                    let waiting: BTreeSet<ProcessId> = groups.iter().map(|&(s, _)| s).collect();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::ReadAt { id, keys: ks, at });
                    }
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            at,
                            got: HashMap::new(),
                            waiting,
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::ReadAtResp { id, reads } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    // Duplicate (or already-answered retry): ignore.
                    if !p.waiting.remove(&env.from) {
                        continue;
                    }
                    for (k, v, _) in reads {
                        p.got.insert(k, v);
                    }
                    if p.waiting.is_empty() {
                        let Some(p) = c.rots.remove(&id) else {
                            continue;
                        };
                        let reads = p
                            .keys
                            .iter()
                            .map(|&k| (k, p.got.get(&k).copied().unwrap_or(Value::BOTTOM)))
                            .collect();
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads,
                                invoked_at: p.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let coordinator = c.topo.primary(writes[0].0);
                    ctx.send(
                        coordinator,
                        Msg::WtxReq {
                            id,
                            writes: writes.clone(),
                        },
                    );
                    c.wtxs.insert(
                        id,
                        PendingWtx {
                            writes,
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::WtxAck { id, ts } => {
                    let _ = ts;
                    // `remove` makes a duplicated ack a no-op.
                    if let Some(pw) = c.wtxs.remove(&id) {
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at: pw.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::RetryTick { id, attempt } => {
                    let mut live = false;
                    if let Some(p) = c.rots.get(&id) {
                        live = true;
                        // Re-read at the SAME timestamp: the snapshot is
                        // the transaction's identity, so retries are
                        // idempotent.
                        for (server, ks) in c.topo.group_by_primary(&p.keys) {
                            if p.waiting.contains(&server) {
                                ctx.send(
                                    server,
                                    Msg::ReadAt {
                                        id,
                                        keys: ks,
                                        at: p.at,
                                    },
                                );
                            }
                        }
                    }
                    if let Some(pw) = c.wtxs.get(&id) {
                        live = true;
                        let coordinator = c.topo.primary(pw.writes[0].0);
                        ctx.send(
                            coordinator,
                            Msg::WtxReq {
                                id,
                                writes: pw.writes.clone(),
                            },
                        );
                    }
                    if live {
                        Self::arm_retry(c, id, attempt + 1, ctx);
                    }
                }
                _ => {}
            }
        }
    }

    /// Arm (or re-arm, with exponential backoff) the per-transaction
    /// retry timer. No-op when retries are disabled or exhausted.
    fn arm_retry(c: &ClientState, id: TxId, attempt: u32, ctx: &mut Ctx<Msg>) {
        if c.topo.retry_after == 0 || attempt >= MAX_RETRIES {
            return;
        }
        ctx.set_timer(
            c.topo.retry_after << attempt,
            Msg::RetryTick { id, attempt },
        );
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::Poll => {
                    s.poll_armed = false;
                    s.drain(ctx);
                }
                Msg::ReadAt { id, keys, at } => {
                    if at <= s.t_safe(ctx.now()) {
                        let reads = s.read_at(&keys, at);
                        ctx.send(env.from, Msg::ReadAtResp { id, reads });
                    } else {
                        // Not safe yet: park — this is the blocking.
                        s.parked.push(ParkedRead {
                            client: env.from,
                            id,
                            keys,
                            at,
                        });
                        s.arm_poll(ctx);
                    }
                }
                Msg::WtxReq { id, writes } => {
                    // Idempotence: an already-acked tx re-acks; one still
                    // in 2PC re-drives the outstanding prepares (they or
                    // their responses may have been lost). A crashed
                    // coordinator restarts 2PC from scratch — participant
                    // dedup makes the restart safe.
                    if let Some(&ts) = s.coord_done.get(&id) {
                        ctx.send(env.from, Msg::WtxAck { id, ts });
                        continue;
                    }
                    if s.commit_waits.contains_key(&id) {
                        continue; // decided; ack follows after commit-wait
                    }
                    let me = ctx.me();
                    if let Some(co) = s.coordinating.get(&id) {
                        for (&server, ws) in &co.per_server {
                            if !co.responded.contains(&server) {
                                ctx.send(
                                    server,
                                    Msg::Prepare {
                                        id,
                                        writes: ws.clone(),
                                        coordinator: me,
                                    },
                                );
                            }
                        }
                        continue;
                    }
                    let mut per_server: BTreeMap<ProcessId, Vec<(Key, Value)>> = Default::default();
                    for &(k, v) in &writes {
                        per_server
                            .entry(s.topo.primary(k))
                            .or_default()
                            .push((k, v));
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    s.coordinating.insert(
                        id,
                        CoordTx {
                            client: env.from,
                            participants,
                            per_server: per_server.clone(),
                            prepare_ts: Vec::new(),
                            responded: BTreeSet::new(),
                        },
                    );
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Prepare {
                                id,
                                writes: ws,
                                coordinator: me,
                            },
                        );
                    }
                }
                Msg::Prepare {
                    id,
                    writes,
                    coordinator,
                } => {
                    // Idempotence: already committed here → re-ack with
                    // the decided ts; still prepared → re-ack the same
                    // prepare ts (never mint a second one).
                    if let Some(&ts) = s.decided.get(&id) {
                        ctx.send(coordinator, Msg::PrepareResp { id, ts });
                        continue;
                    }
                    if let Some(&(ts, _)) = s.prepared.get(&id) {
                        ctx.send(coordinator, Msg::PrepareResp { id, ts });
                        continue;
                    }
                    // Prepare above the local clock and anything used before.
                    let ts = (s.tt.local(ctx.now()) + 1).max(s.high_water + 1);
                    s.high_water = ts;
                    s.prepared.insert(id, (ts, writes));
                    ctx.send(coordinator, Msg::PrepareResp { id, ts });
                }
                Msg::PrepareResp { id, ts } => {
                    let finished = {
                        let Some(co) = s.coordinating.get_mut(&id) else {
                            continue;
                        };
                        // Duplicate response from this participant: ignore.
                        if !co.responded.insert(env.from) {
                            continue;
                        }
                        co.prepare_ts.push(ts);
                        co.responded.len() == co.participants.len()
                    };
                    if finished {
                        let Some(co) = s.coordinating.remove(&id) else {
                            continue;
                        };
                        let now = ctx.now();
                        let s_commit = co
                            .prepare_ts
                            .iter()
                            .copied()
                            .max()
                            .unwrap_or(0)
                            .max(s.tt.now_interval(now).1)
                            .max(s.high_water + 1);
                        s.high_water = s_commit;
                        // Commit-wait: hold the decision until TT.after(s).
                        s.commit_waits.insert(
                            id,
                            WaitingCommit {
                                client: co.client,
                                participants: co.participants,
                                ts: s_commit,
                            },
                        );
                        s.arm_poll(ctx);
                    }
                }
                Msg::Commit { id, ts } => {
                    // Always ack (the previous ack may have been lost),
                    // but a duplicated commit must not re-apply.
                    ctx.send(env.from, Msg::CommitAck { id });
                    if s.decided.contains_key(&id) {
                        continue;
                    }
                    if let Some((_, writes)) = s.prepared.remove(&id) {
                        s.decided.insert(id, ts);
                        s.high_water = s.high_water.max(ts);
                        for (k, v) in writes {
                            s.store.insert(
                                k,
                                Version {
                                    value: v,
                                    ts,
                                    tx: id,
                                },
                            );
                        }
                        // Applying a commit may unblock parked reads.
                        s.drain(ctx);
                    }
                }
                Msg::CommitAck { id } => {
                    if let Some(d) = s.committing.get_mut(&id) {
                        d.unacked.remove(&env.from);
                        if d.unacked.is_empty() {
                            s.committing.remove(&id);
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for SpannerNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            SpannerNode::Client(c) => Self::client_step(c, ctx),
            SpannerNode::Server(s) => Self::server_step(s, ctx),
        }
    }

    fn on_crash(&mut self) {
        if let SpannerNode::Server(s) = self {
            // In-flight coordination, undelivered commit decisions and
            // parked reads are volatile; the store, the prepare/decide
            // logs and the high-water mark model Paxos-durable state.
            // Liveness is restored by client retry: a re-sent WtxReq
            // restarts 2PC, and participant-side dedup (prepared /
            // decided) keeps the restart idempotent — which also
            // unsticks prepared entries orphaned by a lost commit, so
            // t_safe can advance again.
            s.coordinating.clear();
            s.commit_waits.clear();
            s.parked.clear();
            s.poll_armed = false;
        }
    }
}

impl ProtocolNode for SpannerNode {
    const NAME: &'static str = "Spanner-like";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::StrictSerializable;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        let eps = if topo.tuning > 0 {
            topo.tuning
        } else {
            EPSILON
        };
        SpannerNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            tt: TrueTime::for_node(id.0, eps, 7),
            high_water: 0,
            prepared: HashMap::new(),
            coordinating: HashMap::new(),
            commit_waits: HashMap::new(),
            parked: Vec::new(),
            poll_armed: false,
            decided: HashMap::new(),
            coord_done: HashMap::new(),
            committing: HashMap::new(),
        })
    }

    fn client(topo: &Topology, id: ProcessId) -> Self {
        let eps = if topo.tuning > 0 {
            topo.tuning
        } else {
            EPSILON
        };
        SpannerNode::Client(ClientState {
            topo: topo.clone(),
            tt: TrueTime::for_node(id.0, eps, 7),
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            SpannerNode::Client(c) => c.completed.get(&id),
            SpannerNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            SpannerNode::Client(c) => c.completed.remove(&id),
            SpannerNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadAtResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::ReadAt { .. } | Msg::WtxReq { .. })
    }
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::InvokeRot { id, keys } => {
                out.push(0);
                id.encode(out);
                keys.encode(out);
            }
            Msg::InvokeWtx { id, writes } => {
                out.push(1);
                id.encode(out);
                writes.encode(out);
            }
            Msg::ReadAt { id, keys, at } => {
                out.push(2);
                id.encode(out);
                keys.encode(out);
                at.encode(out);
            }
            Msg::ReadAtResp { id, reads } => {
                out.push(3);
                id.encode(out);
                reads.encode(out);
            }
            Msg::WtxReq { id, writes } => {
                out.push(4);
                id.encode(out);
                writes.encode(out);
            }
            Msg::Prepare {
                id,
                writes,
                coordinator,
            } => {
                out.push(5);
                id.encode(out);
                writes.encode(out);
                coordinator.encode(out);
            }
            Msg::PrepareResp { id, ts } => {
                out.push(6);
                id.encode(out);
                ts.encode(out);
            }
            Msg::Commit { id, ts } => {
                out.push(7);
                id.encode(out);
                ts.encode(out);
            }
            Msg::CommitAck { id } => {
                out.push(8);
                id.encode(out);
            }
            Msg::WtxAck { id, ts } => {
                out.push(9);
                id.encode(out);
                ts.encode(out);
            }
            Msg::Poll => out.push(10),
            Msg::RetryTick { id, attempt } => {
                out.push(11);
                id.encode(out);
                attempt.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => Msg::InvokeRot {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
            },
            1 => Msg::InvokeWtx {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
            },
            2 => Msg::ReadAt {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
                at: u64::decode(buf)?,
            },
            3 => Msg::ReadAtResp {
                id: TxId::decode(buf)?,
                reads: Vec::decode(buf)?,
            },
            4 => Msg::WtxReq {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
            },
            5 => Msg::Prepare {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
                coordinator: ProcessId::decode(buf)?,
            },
            6 => Msg::PrepareResp {
                id: TxId::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            7 => Msg::Commit {
                id: TxId::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            8 => Msg::CommitAck {
                id: TxId::decode(buf)?,
            },
            9 => Msg::WtxAck {
                id: TxId::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            10 => Msg::Poll,
            11 => Msg::RetryTick {
                id: TxId::decode(buf)?,
                attempt: u32::decode(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "spanner::Msg",
                    tag,
                })
            }
        })
    }
}

crate::snow_properties! {
    system: "Spanner-like",
    consistency: StrictSerializable,
    rounds: 1,
    values: 1,
    nonblocking: false,
    write_tx: true,
    requests: [ReadAt, WtxReq],
    value_replies: [ReadAtResp],
    paper_row: "Spanner",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::ClientId;

    fn minimal() -> Cluster<SpannerNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.reads[1].1, w.writes[1].1);
        assert!(c.check().is_ok());
    }

    #[test]
    fn reads_are_one_round_one_value() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.audit.rounds, 1, "audit: {:?}", r.audit);
        assert!(r.audit.max_values_per_msg <= 1);
    }

    #[test]
    fn reads_block_on_safe_time() {
        // A fresh read at TT.now().latest is ahead of the server's safe
        // time (clock skews), so the server must park it: blocking.
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let mut saw_blocking = false;
        for i in 0..6u32 {
            let r = c.read_tx(ClientId(1 + i % 3), &[Key(0), Key(1)]).unwrap();
            saw_blocking |= r.audit.blocked;
        }
        assert!(
            saw_blocking,
            "expected at least one parked read; profile: {:?}",
            c.profile()
        );
        assert!(c.profile().any_blocking);
    }

    #[test]
    fn commit_wait_delays_the_ack_by_epsilon() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        // The ack cannot arrive before one ε of commit-wait (plus RTTs).
        assert!(
            w.audit.latency >= EPSILON,
            "latency {} < ε {}",
            w.audit.latency,
            EPSILON
        );
    }

    #[test]
    fn concurrent_writes_and_reads_stay_strictly_consistent() {
        for seed in 0..4u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            // Strict serializability implies causal consistency and
            // read atomicity.
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
            assert!(cbf_model::check_read_atomicity(c.history()).is_empty());
            assert!(cbf_model::check_monotonic_reads(c.history()).is_empty());
        }
    }

    #[test]
    fn profile_reports_w_and_blocking_without_extra_rounds() {
        let mut c = minimal();
        for i in 0..8u32 {
            c.write_tx_auto(ClientId(i % 2), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId(2 + i % 2), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.one_round());
        assert!(p.one_value());
        assert!(p.multi_write_supported);
        // The theorem says something must give: here it is N.
        assert!(p.any_blocking);
        assert!(!p.claims_the_impossible());
    }
}
