//! RAMP-Fast [Bailis et al., SIGMOD 2014]: **read atomicity** — never
//! observe half of a write transaction — without causal consistency.
//!
//! Table 1 row: R ≤ 2, V ≤ 2, non-blocking, W, Read Atomicity.
//!
//! RAMP is the row that shows the consistency column matters: it
//! supports multi-object write transactions with nearly-fast reads by
//! promising *less* than causal consistency. Its detection metadata is
//! per-transaction only — each item carries the id/timestamp and the
//! key-list of its writing transaction — so a reader can repair a
//! fractured view of one transaction (fetch the sibling version in a
//! second round) but has no idea about cross-transaction causal order.
//! The checkers in `cbf-model` make the difference observable: RAMP
//! histories pass `check_read_atomicity` and can fail `check_causal`
//! (see the tests).
//!
//! * **Write transactions**: client-coordinated two-phase — `Prepare`
//!   each key's version (carrying the transaction's full key-list),
//!   then `Commit`; versions are readable once committed, and round-2
//!   sibling fetches may read *prepared* versions (RAMP-Fast's trick,
//!   which is what keeps reads non-blocking).
//! * **Read-only transactions**: round 1 fetches the latest committed
//!   version per key; the client compares the returned timestamps with
//!   the sibling key-lists and, on a fracture, round 2 fetches the
//!   missing sibling versions by exact timestamp.

use crate::common::{Completed, LamportClock, MvStore, ProtocolNode, Topology, Version};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::HashMap;

/// One read-response item: a version plus its transaction's key-list.
#[derive(Clone, Debug)]
pub struct RampItem {
    /// The object.
    pub key: Key,
    /// Its value (`⊥` if never written).
    pub value: Value,
    /// The writing transaction's timestamp (0 for `⊥`).
    pub ts: u64,
    /// All keys the writing transaction wrote (the detection metadata).
    pub tx_keys: Vec<Key>,
}

/// RAMP message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → server: prepare these versions (phase 1).
    Prepare {
        id: TxId,
        ts: u64,
        writes: Vec<(Key, Value)>,
        tx_keys: Vec<Key>,
    },
    /// Server → client: prepared.
    PrepareAck { id: TxId },
    /// Client → server: commit (phase 2).
    Commit { id: TxId, ts: u64 },
    /// Server → client: committed.
    CommitAck { id: TxId },
    /// Client → server: round-1 read.
    Read1 { id: TxId, keys: Vec<Key> },
    /// Server → client: latest committed versions + metadata.
    Read1Resp { id: TxId, items: Vec<RampItem> },
    /// Client → server: round-2 sibling fetch at exact `ts`.
    Read2 { id: TxId, key: Key, ts: u64 },
    /// Server → client: the sibling version (prepared or committed).
    Read2Resp {
        id: TxId,
        key: Key,
        value: Value,
        ts: u64,
    },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    got: HashMap<Key, (Value, u64)>,
    meta: Vec<RampItem>,
    awaiting: usize,
    invoked_at: u64,
}

/// In-flight write transaction at the client.
#[derive(Clone, Debug)]
struct PendingWtx {
    participants: Vec<ProcessId>,
    ts: u64,
    awaiting: usize,
    committing: bool,
    invoked_at: u64,
}

/// RAMP client.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    clock: LamportClock,
    rots: HashMap<TxId, PendingRot>,
    wtxs: HashMap<TxId, PendingWtx>,
    completed: HashMap<TxId, Completed>,
}

/// A prepared transaction at a server: `(ts, writes, tx_keys)`.
type PreparedTx = (u64, Vec<(Key, Value)>, Vec<Key>);

/// RAMP server: committed multi-version store plus prepared versions.
#[derive(Clone, Debug)]
pub struct ServerState {
    store: MvStore,
    /// Key-lists per (key, ts): which keys the writing tx touched.
    meta: HashMap<(Key, u64), Vec<Key>>,
    /// Prepared-but-uncommitted versions, servable by round-2 fetches.
    prepared: HashMap<TxId, PreparedTx>,
}

/// A RAMP node.
#[derive(Clone, Debug)]
pub enum RampNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl RampNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let groups = c.topo.group_by_primary(&keys);
                    let awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::Read1 { id, keys: ks });
                    }
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            got: HashMap::new(),
                            meta: Vec::new(),
                            awaiting,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::InvokeWtx { id, writes } => {
                    let ts = c.clock.tick();
                    let tx_keys: Vec<Key> = writes.iter().map(|&(k, _)| k).collect();
                    let mut per_server: std::collections::BTreeMap<ProcessId, Vec<(Key, Value)>> =
                        Default::default();
                    for &(k, v) in &writes {
                        per_server
                            .entry(c.topo.primary(k))
                            .or_default()
                            .push((k, v));
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Prepare {
                                id,
                                ts,
                                writes: ws,
                                tx_keys: tx_keys.clone(),
                            },
                        );
                    }
                    c.wtxs.insert(
                        id,
                        PendingWtx {
                            awaiting: participants.len(),
                            participants,
                            ts,
                            committing: false,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::PrepareAck { id } => {
                    if let Some(w) = c.wtxs.get_mut(&id) {
                        w.awaiting -= 1;
                        if w.awaiting == 0 && !w.committing {
                            w.committing = true;
                            w.awaiting = w.participants.len();
                            let ts = w.ts;
                            for server in w.participants.clone() {
                                ctx.send(server, Msg::Commit { id, ts });
                            }
                        }
                    }
                }
                Msg::CommitAck { id } => {
                    if let Some(w) = c.wtxs.get_mut(&id) {
                        w.awaiting -= 1;
                        if w.awaiting == 0 {
                            let Some(w) = c.wtxs.remove(&id) else {
                                continue;
                            };
                            c.completed.insert(
                                id,
                                Completed {
                                    id,
                                    reads: Vec::new(),
                                    invoked_at: w.invoked_at,
                                    completed_at: ctx.now(),
                                },
                            );
                        }
                    }
                }
                Msg::Read1Resp { id, items } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    for it in &items {
                        // Witnessing observed timestamps keeps the version
                        // order an extension of observed causality, so the
                        // sibling-repair rule composes with sessions.
                        c.clock.witness(it.ts);
                        p.got.insert(it.key, (it.value, it.ts));
                    }
                    p.meta.extend(items);
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        Self::after_round_one(c, id, ctx);
                    }
                }
                Msg::Read2Resp { id, key, value, ts } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    c.clock.witness(ts);
                    p.got.insert(key, (value, ts));
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        Self::complete_rot(c, id, ctx.now());
                    }
                }
                _ => {}
            }
        }
    }

    /// RAMP-Fast detection: for every read key, the highest timestamp of
    /// any returned transaction that wrote it; fetch siblings where the
    /// optimistic read lags.
    fn after_round_one(c: &mut ClientState, id: TxId, ctx: &mut Ctx<Msg>) {
        let Some(p) = c.rots.get_mut(&id) else {
            return;
        };
        let mut latest: HashMap<Key, u64> = HashMap::new();
        for it in &p.meta {
            for &k in &it.tx_keys {
                let slot = latest.entry(k).or_insert(0);
                *slot = (*slot).max(it.ts);
            }
        }
        let mut refetch = Vec::new();
        for &k in &p.keys {
            let have = p.got.get(&k).map_or(0, |&(_, ts)| ts);
            if let Some(&need) = latest.get(&k) {
                if need > have {
                    refetch.push((k, need));
                }
            }
        }
        if refetch.is_empty() {
            Self::complete_rot(c, id, ctx.now());
            return;
        }
        p.awaiting = refetch.len();
        for (key, ts) in refetch {
            ctx.send(c.topo.primary(key), Msg::Read2 { id, key, ts });
        }
    }

    fn complete_rot(c: &mut ClientState, id: TxId, now: u64) {
        let Some(p) = c.rots.remove(&id) else {
            return;
        };
        let reads = p
            .keys
            .iter()
            .map(|&k| (k, p.got.get(&k).map_or(Value::BOTTOM, |&(v, _)| v)))
            .collect();
        c.completed.insert(
            id,
            Completed {
                id,
                reads,
                invoked_at: p.invoked_at,
                completed_at: now,
            },
        );
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::Prepare {
                    id,
                    ts,
                    writes,
                    tx_keys,
                } => {
                    s.prepared.insert(id, (ts, writes, tx_keys));
                    ctx.send(env.from, Msg::PrepareAck { id });
                }
                Msg::Commit { id, ts } => {
                    if let Some((pts, writes, tx_keys)) = s.prepared.remove(&id) {
                        debug_assert_eq!(pts, ts);
                        for (k, v) in writes {
                            s.store.insert(
                                k,
                                Version {
                                    value: v,
                                    ts,
                                    tx: id,
                                },
                            );
                            s.meta.insert((k, ts), tx_keys.clone());
                        }
                    }
                    ctx.send(env.from, Msg::CommitAck { id });
                }
                Msg::Read1 { id, keys } => {
                    let items: Vec<RampItem> = keys
                        .iter()
                        .map(|&k| match s.store.latest(k) {
                            Some(v) => RampItem {
                                key: k,
                                value: v.value,
                                ts: v.ts,
                                tx_keys: s.meta.get(&(k, v.ts)).cloned().unwrap_or_default(),
                            },
                            None => RampItem {
                                key: k,
                                value: Value::BOTTOM,
                                ts: 0,
                                tx_keys: Vec::new(),
                            },
                        })
                        .collect();
                    ctx.send(env.from, Msg::Read1Resp { id, items });
                }
                Msg::Read2 { id, key, ts } => {
                    // Serve the exact version: committed, or — RAMP-Fast —
                    // still prepared (the commit is in flight; read
                    // atomicity says the sibling counts as written).
                    let committed = s.store.at_exact(key, ts).map(|v| v.value);
                    let value = committed.or_else(|| {
                        s.prepared.values().find_map(|(pts, writes, _)| {
                            (*pts == ts)
                                .then(|| writes.iter().find(|(k, _)| *k == key).map(|&(_, v)| v))
                                .flatten()
                        })
                    });
                    // The version must exist: its metadata was visible.
                    // snowlint: allow(handler-unwrap): this shard served the (key, ts) metadata itself, so the sibling is prepared or committed here; RAMP declares no crash durability model and is not run under the nemesis
                    let value = value.expect("sibling version must be prepared or committed");
                    ctx.send(env.from, Msg::Read2Resp { id, key, value, ts });
                }
                _ => {}
            }
        }
    }
}

impl Actor for RampNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            RampNode::Client(c) => Self::client_step(c, ctx),
            RampNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for RampNode {
    const NAME: &'static str = "RAMP";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::ReadAtomicity;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(_topo: &Topology, _id: ProcessId) -> Self {
        RampNode::Server(ServerState {
            store: MvStore::new(),
            meta: HashMap::new(),
            prepared: HashMap::new(),
        })
    }

    fn client(topo: &Topology, id: ProcessId) -> Self {
        RampNode::Client(ClientState {
            topo: topo.clone(),
            clock: LamportClock::new(id.0 as u8),
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            RampNode::Client(c) => c.completed.get(&id),
            RampNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            RampNode::Client(c) => c.completed.remove(&id),
            RampNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::Read1Resp { items, .. } => crate::common::max_values_per_object(
                items
                    .iter()
                    .filter(|it| !it.value.is_bottom())
                    .map(|it| it.key),
            ),
            Msg::Read2Resp { .. } => 1,
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::Read1 { .. } | Msg::Read2 { .. } | Msg::Prepare { .. } | Msg::Commit { .. }
        )
    }
}

crate::snow_properties! {
    system: "RAMP",
    consistency: ReadAtomicity,
    rounds: 2,
    values: 2,
    nonblocking: true,
    write_tx: true,
    requests: [Read1, Read2, Prepare, Commit],
    value_replies: [Read1Resp, Read2Resp],
    paper_row: "RAMP",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::{check_causal, check_read_atomicity, ClientId};
    use cbf_sim::MILLIS;

    fn minimal() -> Cluster<RampNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn write_tx_round_trip() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        assert_eq!(w.audit.rounds, 2); // prepare + commit
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.reads[1].1, w.writes[1].1);
    }

    #[test]
    fn fractured_view_is_repaired_in_round_two() {
        // Commit lands at p0 but is frozen to p1; the reader detects the
        // fracture from the key-list metadata and fetches the sibling —
        // which p1 still holds only as *prepared*.
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();

        let wpid = c.topo.client_pid(ClientId(0));
        let id = c.alloc_tx();
        let (v0, v1) = (c.alloc_value(), c.alloc_value());
        c.world.inject(
            wpid,
            Msg::InvokeWtx {
                id,
                writes: vec![(Key(0), v0), (Key(1), v1)],
            },
        );
        // Prepares round-trip by 100 µs; commits go out at 100 µs. Freeze
        // the commit to p1 only.
        c.world.run_for(120 * cbf_sim::MICROS);
        c.world.hold(wpid, ProcessId(1));
        c.world.run_for(MILLIS);

        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        // Read atomicity: both new values, via the round-2 sibling fetch.
        assert_eq!(r.reads, vec![(Key(0), v0), (Key(1), v1)]);
        assert_eq!(r.audit.rounds, 2, "audit: {:?}", r.audit);
        assert!(!r.audit.blocked);
        assert!(check_read_atomicity(c.history()).is_empty());
    }

    #[test]
    fn ramp_guarantees_read_atomicity_under_chaos() {
        for seed in 0..6u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            c.world.run_chaotic(seed, 200_000);
            assert!(
                check_read_atomicity(c.history()).is_empty(),
                "seed {seed}: fractured reads"
            );
        }
    }

    #[test]
    fn ramp_is_not_causally_consistent() {
        // The distinguishing anomaly: c0 writes X0 (tx1) then X1 (tx2) —
        // two *separate* transactions, causally ordered through c0. A
        // reader whose X0 request is delayed past both writes sees
        // (old X0, new X1): fine for read atomicity, a causal violation.
        let mut c = minimal();
        let init0 = c.alloc_value();
        let init1 = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), init0)]).unwrap();
        c.write_tx(ClientId(0), &[(Key(1), init1)]).unwrap();
        // The writer reads both (causal hinge, as in Lemma 1's setup).
        c.read_tx(ClientId(0), &[Key(0), Key(1)]).unwrap();

        // Reader's ROT: X0 answered now (old), X1 frozen.
        let rpid = c.topo.client_pid(ClientId(1));
        c.world.hold_pair(rpid, ProcessId(1));
        let rot = c.alloc_tx();
        c.world.inject(
            rpid,
            Msg::InvokeRot {
                id: rot,
                keys: vec![Key(0), Key(1)],
            },
        );
        c.world.run_for(MILLIS);

        // Two causally ordered single-key transactions by the writer.
        let v0 = c.alloc_value();
        let v1 = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), v0)]).unwrap();
        c.write_tx(ClientId(0), &[(Key(1), v1)]).unwrap();

        c.world.release_pair(rpid, ProcessId(1));
        c.world
            .run_until_within(cbf_sim::SECONDS, |w| w.actor(rpid).completed(rot).is_some());
        let done = c.world.actor_mut(rpid).take_completed(rot).unwrap();
        assert_eq!(
            done.reads,
            vec![(Key(0), init0), (Key(1), v1)],
            "expected the causal anomaly (old X0, new X1)"
        );

        // Record it and let the checkers disagree — that is RAMP's row.
        let mut h = c.history().clone();
        h.push(cbf_model::history::TxRecord {
            id: rot,
            client: ClientId(1),
            reads: done.reads,
            writes: vec![],
            invoked_at: 0,
            completed_at: 0,
        });
        assert!(check_read_atomicity(&h).is_empty(), "RA must hold");
        assert!(!check_causal(&h).is_ok(), "causal must fail");
    }

    #[test]
    fn profile_matches_table_row() {
        let mut c = minimal();
        for i in 0..8u32 {
            c.write_tx_auto(ClientId(i % 2), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId(2 + i % 2), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.max_rounds <= 2);
        assert!(p.nonblocking());
        assert!(p.multi_write_supported);
    }
}
