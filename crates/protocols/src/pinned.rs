//! The † row, demystified: a protocol with fast ROTs **and** multi-object
//! write transactions **and** causal consistency — which escapes the
//! theorem only by violating its progress premise.
//!
//! Table 1 marks SwiftCloud and Eiger-PS with † ("different system
//! model"). The paper's related-work section explains why they do not
//! contradict the theorem: *"Although they eventually complete all
//! writes, the values they write may be invisible to some clients for an
//! indefinitely long time."* — i.e., they give up Definition 3 (minimal
//! progress for write-only transactions), the premise every other result
//! in the paper leans on.
//!
//! `PinnedNode` is the distilled version: every client reads from a
//! **pinned snapshot** that advances only on the client's *own* commits
//! (mimicking the client-side caching of SwiftCloud and the
//! process-ordered snapshots of Eiger-PS, without server→client pushes,
//! which the model forbids):
//!
//! * reads are one round, one value, non-blocking — genuinely fast;
//! * multi-object write transactions commit via 2PC with monotonically
//!   increasing timestamps;
//! * each ROT reads at the client's pinned timestamp, so the snapshot is
//!   trivially causal (it is a prefix of the timestamp order)…
//! * …but a client that never writes *never observes anyone else's
//!   writes*: Definition 2 visibility fails forever, and the theorem
//!   machinery reports `NoProgress` instead of a mixed snapshot.
//!
//! Run `repro daggers` to see the audit call it out.

use crate::common::{Completed, LamportClock, MvStore, ProtocolNode, Topology, Version};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::HashMap;

/// Pinned-snapshot message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → server: read keys at the client's pinned snapshot.
    ReadAt { id: TxId, keys: Vec<Key>, at: u64 },
    /// Server → client: one value per key at the snapshot.
    ReadAtResp {
        id: TxId,
        reads: Vec<(Key, Value, u64)>,
    },
    /// Client → coordinator: run this write-only transaction.
    WtxReq {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
    },
    /// Coordinator → participant: propose and hold.
    Prepare {
        id: TxId,
        writes: Vec<(Key, Value)>,
        dep_ts: u64,
        coordinator: ProcessId,
    },
    /// Participant → coordinator: proposal.
    PrepareResp { id: TxId, proposed: u64 },
    /// Coordinator → participant: commit at `ts`.
    Commit { id: TxId, ts: u64 },
    /// Coordinator → client: committed at `ts`.
    WtxAck { id: TxId, ts: u64 },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    got: HashMap<Key, (Value, u64)>,
    awaiting: usize,
    invoked_at: u64,
}

/// Pinned-snapshot client.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// The snapshot this client reads at. Advances ONLY on own commits.
    pinned: u64,
    /// Own writes above the pin, for read-your-writes.
    cache: HashMap<Key, (Value, u64)>,
    rots: HashMap<TxId, PendingRot>,
    wtxs: HashMap<TxId, (Vec<(Key, Value)>, u64)>,
    completed: HashMap<TxId, Completed>,
}

/// Coordinator-side 2PC state.
#[derive(Clone, Debug)]
struct CoordTx {
    client: ProcessId,
    participants: Vec<ProcessId>,
    proposals: Vec<u64>,
    awaiting: usize,
}

/// Pinned-snapshot server: a plain multi-version store + 2PC.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    clock: LamportClock,
    pending: HashMap<TxId, (u64, Vec<(Key, Value)>)>,
    coordinating: HashMap<TxId, CoordTx>,
}

/// A pinned-snapshot node.
#[derive(Clone, Debug)]
pub enum PinnedNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl PinnedNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let at = c.pinned;
                    let groups = c.topo.group_by_primary(&keys);
                    let awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::ReadAt { id, keys: ks, at });
                    }
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            got: HashMap::new(),
                            awaiting,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::ReadAtResp { id, reads } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    for (k, v, ts) in reads {
                        p.got.insert(k, (v, ts));
                    }
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        let Some(p) = c.rots.remove(&id) else {
                            continue;
                        };
                        let reads = p
                            .keys
                            .iter()
                            .map(|&k| {
                                let (mut v, ts) =
                                    p.got.get(&k).copied().unwrap_or((Value::BOTTOM, 0));
                                if let Some(&(cv, cts)) = c.cache.get(&k) {
                                    if cts > ts {
                                        v = cv;
                                    }
                                }
                                (k, v)
                            })
                            .collect();
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads,
                                invoked_at: p.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let coordinator = c.topo.primary(writes[0].0);
                    ctx.send(
                        coordinator,
                        Msg::WtxReq {
                            id,
                            writes: writes.clone(),
                            dep_ts: c.pinned,
                        },
                    );
                    c.wtxs.insert(id, (writes, ctx.now()));
                }
                Msg::WtxAck { id, ts } => {
                    if let Some((writes, invoked_at)) = c.wtxs.remove(&id) {
                        // The pin advances only here: the client's own
                        // commit. Everyone else's writes stay invisible
                        // to this client until it writes again.
                        c.pinned = c.pinned.max(ts);
                        for (k, v) in writes {
                            c.cache.insert(k, (v, ts));
                        }
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::ReadAt { id, keys, at } => {
                    let reads: Vec<(Key, Value, u64)> = keys
                        .iter()
                        .map(|&k| match s.store.latest_at(k, at) {
                            Some(v) => (k, v.value, v.ts),
                            None => (k, Value::BOTTOM, 0),
                        })
                        .collect();
                    ctx.send(env.from, Msg::ReadAtResp { id, reads });
                }
                Msg::WtxReq { id, writes, dep_ts } => {
                    s.clock.witness(dep_ts);
                    let mut per_server: std::collections::BTreeMap<ProcessId, Vec<(Key, Value)>> =
                        Default::default();
                    for &(k, v) in &writes {
                        per_server
                            .entry(s.topo.primary(k))
                            .or_default()
                            .push((k, v));
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    s.coordinating.insert(
                        id,
                        CoordTx {
                            client: env.from,
                            participants: participants.clone(),
                            proposals: Vec::new(),
                            awaiting: participants.len(),
                        },
                    );
                    let me = ctx.me();
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Prepare {
                                id,
                                writes: ws,
                                dep_ts,
                                coordinator: me,
                            },
                        );
                    }
                }
                Msg::Prepare {
                    id,
                    writes,
                    dep_ts,
                    coordinator,
                } => {
                    s.clock.witness(dep_ts);
                    let proposed = s.clock.tick();
                    s.pending.insert(id, (proposed, writes));
                    ctx.send(coordinator, Msg::PrepareResp { id, proposed });
                }
                Msg::PrepareResp { id, proposed } => {
                    let finished = {
                        let Some(co) = s.coordinating.get_mut(&id) else {
                            continue;
                        };
                        co.proposals.push(proposed);
                        co.awaiting -= 1;
                        co.awaiting == 0
                    };
                    if finished {
                        let Some(co) = s.coordinating.remove(&id) else {
                            continue;
                        };
                        let ts = co.proposals.iter().copied().max().unwrap_or(0);
                        s.clock.witness(ts);
                        for part in &co.participants {
                            ctx.send(*part, Msg::Commit { id, ts });
                        }
                        ctx.send(co.client, Msg::WtxAck { id, ts });
                    }
                }
                Msg::Commit { id, ts } => {
                    if let Some((_, writes)) = s.pending.remove(&id) {
                        s.clock.witness(ts);
                        for (k, v) in writes {
                            s.store.insert(
                                k,
                                Version {
                                    value: v,
                                    ts,
                                    tx: id,
                                },
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for PinnedNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            PinnedNode::Client(c) => Self::client_step(c, ctx),
            PinnedNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for PinnedNode {
    const NAME: &'static str = "pinned (†-style)";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        PinnedNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            clock: LamportClock::new(id.0 as u8),
            pending: HashMap::new(),
            coordinating: HashMap::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        PinnedNode::Client(ClientState {
            topo: topo.clone(),
            pinned: 0,
            cache: HashMap::new(),
            rots: HashMap::new(),
            wtxs: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            PinnedNode::Client(c) => c.completed.get(&id),
            PinnedNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            PinnedNode::Client(c) => c.completed.remove(&id),
            PinnedNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadAtResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::ReadAt { .. } | Msg::WtxReq { .. })
    }
}

crate::snow_properties! {
    system: "pinned (†-style)",
    consistency: Causal,
    rounds: 1,
    values: 1,
    nonblocking: true,
    write_tx: true,
    requests: [ReadAt, WtxReq],
    value_replies: [ReadAtResp],
    paper_row: "SwiftCloud",
    escape_hatch: "dagger: forsakes minimal progress (Definition 3) — writes may stay invisible to other clients indefinitely, which takes the design out of the theorem's scope",
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::ClientId;

    fn minimal() -> Cluster<PinnedNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn reads_are_fast_and_writes_are_transactions() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let _ = w;
        let r = c.read_tx(ClientId(0), &[Key(0), Key(1)]).unwrap();
        // The writer sees its own transaction (pin advanced)…
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert!(r.audit.is_fast(), "audit: {:?}", r.audit);
        assert!(c.profile().multi_write_supported);
    }

    #[test]
    fn other_clients_never_see_the_write() {
        // …but a non-writing client reads ⊥ forever: the † escape hatch.
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        for _ in 0..5 {
            c.world.run_for(10 * cbf_sim::MILLIS);
            let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
            assert_eq!(r.reads[0].1, Value::BOTTOM, "the pin never advances");
        }
        // The history is still causal: reading the initial state forever
        // is consistent — just useless.
        assert!(c.check().is_ok());
    }

    #[test]
    fn a_client_catches_up_by_writing() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        // Client 1 commits its own (single-key-overwriting) transaction:
        // its pin jumps past w's timestamp.
        let v = c.alloc_value();
        c.write_tx(ClientId(1), &[(Key(0), v)]).unwrap();
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, v); // own cache
        assert_eq!(r.reads[1].1, w.writes[1].1); // now visible
        assert!(c.check().is_ok(), "{:?}", c.check().violations);
    }

    #[test]
    fn profile_claims_all_four_properties() {
        let mut c = minimal();
        for i in 0..6u32 {
            c.write_tx_auto(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.fast_rots(), "profile: {p:?}");
        assert!(p.multi_write_supported);
        assert!(p.claims_the_impossible());
        assert!(c.check().is_ok());
    }

    #[test]
    fn chaos_cannot_break_what_never_progresses() {
        for seed in 0..4u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            c.world.run_chaotic(seed, 200_000);
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
        }
    }
}
