//! COPS-SNOW [Lu et al., OSDI 2016]: the N + R + V corner of the design
//! space — genuinely **fast** read-only transactions (one round,
//! non-blocking, one-value), bought by giving up multi-object write
//! transactions and by making writes expensive.
//!
//! Mechanism (§3.4 of the paper): before a server makes a new version
//! visible, it asks the servers of the version's dependencies for the
//! *old readers* — the ids of read-only transactions that read an older
//! version of a dependency. The new version is then hidden from exactly
//! those ROTs: a reader that saw the old world keeps seeing the old
//! world, and a one-round, one-value read can never return a causally
//! torn pair.
//!
//! The visibility blacklist must be transitive across dependency chains:
//! the old readers of a version `ts` of key `k` include both the ROTs
//! that read `k` below `ts` and the ROTs blacklisted on any version
//! `≤ ts` of `k`.

use crate::common::{
    Completed, LamportClock, MvStore, ProtocolNode, Topology, Version, Wire, WireError, MAX_RETRIES,
};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A dependency: `(key, version timestamp)`.
pub type Dep = (Key, u64);

/// COPS-SNOW message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write transaction (single-object only).
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → server: one-round ROT read of these keys.
    RotReq { id: TxId, keys: Vec<Key> },
    /// Server → client: `(key, value, version)` per requested key — one
    /// written value per key, no transitive payload.
    RotResp {
        id: TxId,
        reads: Vec<(Key, Value, u64)>,
    },
    /// Client → server: dependency-tracked single-key put.
    PutReq {
        id: TxId,
        key: Key,
        value: Value,
        deps: Vec<Dep>,
    },
    /// Server → server: who read any of these dependencies *before* the
    /// dependency's version? (`put` identifies the pending write.)
    OldReaderQuery { put: TxId, deps: Vec<Dep> },
    /// Server → server: the old readers.
    OldReaderResp { put: TxId, readers: Vec<TxId> },
    /// Server → client: put is visible.
    PutAck { id: TxId, key: Key, ts: u64 },
    /// Self-timer: retry outstanding requests of transaction `id` if it
    /// is still pending (armed only when `Topology::retry_after > 0`).
    RetryTick { id: TxId, attempt: u32 },
}

/// In-flight ROT at the client. The waiting *set* (not a counter) makes
/// response handling idempotent under duplicated deliveries.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    got: HashMap<Key, (Value, u64)>,
    waiting: BTreeSet<ProcessId>,
    invoked_at: u64,
}

/// In-flight put at the client (kept until acked, for resend).
#[derive(Clone, Debug)]
struct PendingWrite {
    key: Key,
    value: Value,
    deps: Vec<Dep>,
    invoked_at: u64,
}

/// COPS-SNOW client.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Latest observed version per key, attached to puts as dependencies.
    context: HashMap<Key, u64>,
    rots: HashMap<TxId, PendingRot>,
    puts: HashMap<TxId, PendingWrite>,
    completed: HashMap<TxId, Completed>,
}

/// A put waiting for old-reader responses before becoming visible.
#[derive(Clone, Debug)]
struct PendingPut {
    key: Key,
    ts: u64,
    client: ProcessId,
    /// Dependency servers whose old-reader response is outstanding.
    waiting: BTreeSet<ProcessId>,
    /// The per-server dependency lists (kept so a client retry can
    /// re-send old-reader queries that were lost in flight).
    remote_deps: BTreeMap<ProcessId, Vec<Dep>>,
    invisible_to: HashSet<TxId>,
}

/// COPS-SNOW server.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    clock: LamportClock,
    /// Versions inserted but not yet visible (old-reader queries pending).
    pending_visible: HashSet<(Key, u64)>,
    /// Per visible version: the ROTs it is hidden from.
    invisible: HashMap<(Key, u64), HashSet<TxId>>,
    /// ROT read log: per key, `(rot id, version read)`.
    readers: HashMap<Key, Vec<(TxId, u64)>>,
    /// Puts awaiting old-reader responses.
    pending_puts: HashMap<TxId, PendingPut>,
    /// Puts already made visible: `tx → (key, ts)`. A re-delivered
    /// `PutReq` (duplicate or client retry racing the ack) re-acks from
    /// here instead of minting a second version.
    done_puts: HashMap<TxId, (Key, u64)>,
}

impl ServerState {
    /// Old readers of dependency `(key, ts)`: ROTs that read below `ts`,
    /// plus ROTs blacklisted on any version `≤ ts` (transitivity).
    fn old_readers(&self, key: Key, ts: u64) -> HashSet<TxId> {
        let mut out: HashSet<TxId> = self
            .readers
            .get(&key)
            .into_iter()
            .flatten()
            .filter(|&&(_, read_ts)| read_ts < ts)
            .map(|&(rot, _)| rot)
            .collect();
        for ((k, vts), rots) in &self.invisible {
            if *k == key && *vts <= ts {
                out.extend(rots.iter().copied());
            }
        }
        out
    }

    /// The version of `key` served to ROT `rot`: the newest visible
    /// version not blacklisted for `rot`.
    fn serve(&mut self, key: Key, rot: TxId) -> (Value, u64) {
        let chosen = self
            .store
            .versions(key)
            .iter()
            .rev()
            .find(|v| {
                !self.pending_visible.contains(&(key, v.ts))
                    && !self
                        .invisible
                        .get(&(key, v.ts))
                        .is_some_and(|s| s.contains(&rot))
            })
            .map(|v| (v.value, v.ts))
            .unwrap_or((Value::BOTTOM, 0));
        self.readers.entry(key).or_default().push((rot, chosen.1));
        chosen
    }

    /// All old-reader responses arrived (or none were needed): make the
    /// version visible (except to its blacklist) and ack the writer.
    fn finalize_put(&mut self, put: TxId, ctx: &mut Ctx<Msg>) {
        let Some(p) = self.pending_puts.remove(&put) else {
            return;
        };
        self.pending_visible.remove(&(p.key, p.ts));
        if !p.invisible_to.is_empty() {
            self.invisible.insert((p.key, p.ts), p.invisible_to);
        }
        self.done_puts.insert(put, (p.key, p.ts));
        ctx.send(
            p.client,
            Msg::PutAck {
                id: put,
                key: p.key,
                ts: p.ts,
            },
        );
    }
}

/// A COPS-SNOW node.
#[derive(Clone, Debug)]
pub enum CopsSnowNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl CopsSnowNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let groups = c.topo.group_by_primary(&keys);
                    let waiting: BTreeSet<ProcessId> = groups.iter().map(|&(s, _)| s).collect();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::RotReq { id, keys: ks });
                    }
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            got: HashMap::new(),
                            waiting,
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::InvokeWtx { id, writes } => {
                    let (key, value) = writes[0];
                    let mut deps: Vec<Dep> = c.context.iter().map(|(&k, &t)| (k, t)).collect();
                    deps.sort_unstable();
                    ctx.send(
                        c.topo.primary(key),
                        Msg::PutReq {
                            id,
                            key,
                            value,
                            deps: deps.clone(),
                        },
                    );
                    c.puts.insert(
                        id,
                        PendingWrite {
                            key,
                            value,
                            deps,
                            invoked_at: ctx.now(),
                        },
                    );
                    Self::arm_retry(c, id, 0, ctx);
                }
                Msg::RotResp { id, reads } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    // Duplicate (or already-answered retry): ignore the
                    // whole response.
                    if !p.waiting.remove(&env.from) {
                        continue;
                    }
                    for (k, v, ts) in reads {
                        p.got.insert(k, (v, ts));
                    }
                    if p.waiting.is_empty() {
                        let Some(p) = c.rots.remove(&id) else {
                            continue;
                        };
                        let mut out = Vec::with_capacity(p.keys.len());
                        for &k in &p.keys {
                            let (v, ts) = p.got.get(&k).copied().unwrap_or((Value::BOTTOM, 0));
                            out.push((k, v));
                            if ts > 0 {
                                let slot = c.context.entry(k).or_insert(0);
                                *slot = (*slot).max(ts);
                            }
                        }
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: out,
                                invoked_at: p.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::PutAck { id, key, ts } => {
                    // `remove` makes a duplicated ack a no-op.
                    if let Some(pw) = c.puts.remove(&id) {
                        let slot = c.context.entry(key).or_insert(0);
                        *slot = (*slot).max(ts);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at: pw.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::RetryTick { id, attempt } => {
                    let mut live = false;
                    if let Some(p) = c.rots.get(&id) {
                        live = true;
                        for (server, ks) in c.topo.group_by_primary(&p.keys) {
                            if p.waiting.contains(&server) {
                                ctx.send(server, Msg::RotReq { id, keys: ks });
                            }
                        }
                    }
                    if let Some(pw) = c.puts.get(&id) {
                        live = true;
                        ctx.send(
                            c.topo.primary(pw.key),
                            Msg::PutReq {
                                id,
                                key: pw.key,
                                value: pw.value,
                                deps: pw.deps.clone(),
                            },
                        );
                    }
                    if live {
                        Self::arm_retry(c, id, attempt + 1, ctx);
                    }
                }
                _ => {}
            }
        }
    }

    /// Arm (or re-arm, with exponential backoff) the per-transaction
    /// retry timer. No-op when retries are disabled or exhausted.
    fn arm_retry(c: &ClientState, id: TxId, attempt: u32, ctx: &mut Ctx<Msg>) {
        if c.topo.retry_after == 0 || attempt >= MAX_RETRIES {
            return;
        }
        ctx.set_timer(
            c.topo.retry_after << attempt,
            Msg::RetryTick { id, attempt },
        );
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::RotReq { id, keys } => {
                    let reads: Vec<(Key, Value, u64)> = keys
                        .iter()
                        .map(|&k| {
                            let (v, ts) = s.serve(k, id);
                            (k, v, ts)
                        })
                        .collect();
                    ctx.send(env.from, Msg::RotResp { id, reads });
                }
                Msg::PutReq {
                    id,
                    key,
                    value,
                    deps,
                } => {
                    // Idempotence: an already-visible put re-acks; a put
                    // still gathering old readers re-drives its
                    // outstanding queries (they may have been lost).
                    if let Some(&(k, ts)) = s.done_puts.get(&id) {
                        ctx.send(env.from, Msg::PutAck { id, key: k, ts });
                        continue;
                    }
                    if let Some(p) = s.pending_puts.get(&id) {
                        for server in p.waiting.iter().copied().collect::<Vec<_>>() {
                            let deps = p.remote_deps.get(&server).cloned().unwrap_or_default();
                            ctx.send(server, Msg::OldReaderQuery { put: id, deps });
                        }
                        continue;
                    }
                    for &(_, t) in &deps {
                        s.clock.witness(t);
                    }
                    let ts = s.clock.tick();
                    s.store.insert(key, Version { value, ts, tx: id });
                    s.pending_visible.insert((key, ts));

                    // Local deps resolve immediately; remote deps need a
                    // query round. (One message per dep server, as the
                    // paper's step semantics require.)
                    let mut invisible_to = HashSet::new();
                    let mut remote: BTreeMap<ProcessId, Vec<Dep>> = Default::default();
                    for &(dk, dts) in &deps {
                        let home = s.topo.primary(dk);
                        if home == ctx.me() {
                            invisible_to.extend(s.old_readers(dk, dts));
                        } else {
                            remote.entry(home).or_default().push((dk, dts));
                        }
                    }
                    let waiting: BTreeSet<ProcessId> = remote.keys().copied().collect();
                    s.pending_puts.insert(
                        id,
                        PendingPut {
                            key,
                            ts,
                            client: env.from,
                            waiting,
                            remote_deps: remote.clone(),
                            invisible_to,
                        },
                    );
                    if remote.is_empty() {
                        s.finalize_put(id, ctx);
                    } else {
                        for (server, deps) in remote {
                            ctx.send(server, Msg::OldReaderQuery { put: id, deps });
                        }
                    }
                }
                Msg::OldReaderQuery { put, deps } => {
                    let mut readers: HashSet<TxId> = HashSet::new();
                    for (dk, dts) in deps {
                        readers.extend(s.old_readers(dk, dts));
                    }
                    let mut readers: Vec<TxId> = readers.into_iter().collect();
                    readers.sort_unstable();
                    ctx.send(env.from, Msg::OldReaderResp { put, readers });
                }
                Msg::OldReaderResp { put, readers } => {
                    let finalize = {
                        let Some(p) = s.pending_puts.get_mut(&put) else {
                            continue;
                        };
                        // Duplicate response from this server: ignore.
                        if !p.waiting.remove(&env.from) {
                            continue;
                        }
                        p.invisible_to.extend(readers);
                        p.waiting.is_empty()
                    };
                    if finalize {
                        s.finalize_put(put, ctx);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for CopsSnowNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            CopsSnowNode::Client(c) => Self::client_step(c, ctx),
            CopsSnowNode::Server(s) => Self::server_step(s, ctx),
        }
    }

    fn on_crash(&mut self) {
        if let CopsSnowNode::Server(s) = self {
            // In-progress old-reader gathering is volatile. The orphaned
            // versions stay in `pending_visible` forever — never acked,
            // never a dependency, so hiding them is causally safe. The
            // writer's retry re-puts under the same tx id and mints a
            // fresh version. Store, read log, visibility blacklists and
            // the done-put log are durable.
            s.pending_puts.clear();
        }
    }
}

impl ProtocolNode for CopsSnowNode {
    const NAME: &'static str = "COPS-SNOW";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        CopsSnowNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            clock: LamportClock::new(id.0 as u8),
            pending_visible: HashSet::new(),
            invisible: HashMap::new(),
            readers: HashMap::new(),
            pending_puts: HashMap::new(),
            done_puts: HashMap::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        CopsSnowNode::Client(ClientState {
            topo: topo.clone(),
            context: HashMap::new(),
            rots: HashMap::new(),
            puts: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            CopsSnowNode::Client(c) => c.completed.get(&id),
            CopsSnowNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            CopsSnowNode::Client(c) => c.completed.remove(&id),
            CopsSnowNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::RotResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::RotReq { .. } | Msg::PutReq { .. })
    }
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::InvokeRot { id, keys } => {
                out.push(0);
                id.encode(out);
                keys.encode(out);
            }
            Msg::InvokeWtx { id, writes } => {
                out.push(1);
                id.encode(out);
                writes.encode(out);
            }
            Msg::RotReq { id, keys } => {
                out.push(2);
                id.encode(out);
                keys.encode(out);
            }
            Msg::RotResp { id, reads } => {
                out.push(3);
                id.encode(out);
                reads.encode(out);
            }
            Msg::PutReq {
                id,
                key,
                value,
                deps,
            } => {
                out.push(4);
                id.encode(out);
                key.encode(out);
                value.encode(out);
                deps.encode(out);
            }
            Msg::OldReaderQuery { put, deps } => {
                out.push(5);
                put.encode(out);
                deps.encode(out);
            }
            Msg::OldReaderResp { put, readers } => {
                out.push(6);
                put.encode(out);
                readers.encode(out);
            }
            Msg::PutAck { id, key, ts } => {
                out.push(7);
                id.encode(out);
                key.encode(out);
                ts.encode(out);
            }
            Msg::RetryTick { id, attempt } => {
                out.push(8);
                id.encode(out);
                attempt.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => Msg::InvokeRot {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
            },
            1 => Msg::InvokeWtx {
                id: TxId::decode(buf)?,
                writes: Vec::decode(buf)?,
            },
            2 => Msg::RotReq {
                id: TxId::decode(buf)?,
                keys: Vec::decode(buf)?,
            },
            3 => Msg::RotResp {
                id: TxId::decode(buf)?,
                reads: Vec::decode(buf)?,
            },
            4 => Msg::PutReq {
                id: TxId::decode(buf)?,
                key: Key::decode(buf)?,
                value: Value::decode(buf)?,
                deps: Vec::decode(buf)?,
            },
            5 => Msg::OldReaderQuery {
                put: TxId::decode(buf)?,
                deps: Vec::decode(buf)?,
            },
            6 => Msg::OldReaderResp {
                put: TxId::decode(buf)?,
                readers: Vec::decode(buf)?,
            },
            7 => Msg::PutAck {
                id: TxId::decode(buf)?,
                key: Key::decode(buf)?,
                ts: u64::decode(buf)?,
            },
            8 => Msg::RetryTick {
                id: TxId::decode(buf)?,
                attempt: u32::decode(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "cops_snow::Msg",
                    tag,
                })
            }
        })
    }
}

crate::snow_properties! {
    system: "COPS-SNOW",
    consistency: Causal,
    rounds: 1,
    values: 1,
    nonblocking: true,
    write_tx: false,
    requests: [RotReq, PutReq],
    value_replies: [RotResp],
    paper_row: "COPS-SNOW",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Cluster, TxError};
    use cbf_model::ClientId;
    use cbf_sim::MILLIS;

    fn minimal() -> Cluster<CopsSnowNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn rots_are_fast() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0)]).unwrap();
        c.write_tx_auto(ClientId(0), &[Key(1)]).unwrap();
        for i in 0..6u32 {
            let r = c.read_tx(ClientId(1 + i % 3), &[Key(0), Key(1)]).unwrap();
            assert!(r.audit.is_fast(), "audit: {:?}", r.audit);
        }
        assert!(c.profile().fast_rots());
        assert!(!c.profile().multi_write_supported);
        assert!(c.check().is_ok());
    }

    #[test]
    fn multi_write_is_rejected() {
        let mut c = minimal();
        let err = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap_err();
        assert_eq!(err, TxError::MultiWriteUnsupported);
    }

    #[test]
    fn old_reader_keeps_seeing_the_old_world() {
        // The signature COPS-SNOW behaviour: a ROT that read old X0 is
        // blacklisted from the dependent new X1.
        let mut c = minimal();
        let writer = ClientId(0);
        let v0_old = c.alloc_value();
        let v1_old = c.alloc_value();
        c.write_tx(writer, &[(Key(0), v0_old)]).unwrap();
        c.write_tx(writer, &[(Key(1), v1_old)]).unwrap();

        // Reader's ROT: the request to p0 is delivered now (reads old
        // X0); the request to p1 is frozen.
        let reader = ClientId(1);
        let rpid = c.topo.client_pid(reader);
        c.world.hold(rpid, ProcessId(1));
        let rot = c.alloc_tx();
        c.world.inject(
            rpid,
            Msg::InvokeRot {
                id: rot,
                keys: vec![Key(0), Key(1)],
            },
        );
        c.world.run_for(MILLIS); // p0 serves (v0_old); records the read

        // Writer (who knows the old X0): new X0, then X1 dep new-X0.
        let v0_new = c.alloc_value();
        let v1_new = c.alloc_value();
        c.write_tx(writer, &[(Key(0), v0_new)]).unwrap();
        c.write_tx(writer, &[(Key(1), v1_new)]).unwrap();

        // Release the frozen request: p1 must serve v1_old to this ROT
        // (v1_new is invisible to it), keeping the snapshot causal.
        c.world.release(rpid, ProcessId(1));
        c.world
            .run_until_within(cbf_sim::SECONDS, |w| w.actor(rpid).completed(rot).is_some());
        let done = c.world.actor_mut(rpid).take_completed(rot).unwrap();
        assert_eq!(done.reads, vec![(Key(0), v0_old), (Key(1), v1_old)]);

        // A fresh ROT sees the new world.
        let fresh = c.read_tx(ClientId(2), &[Key(0), Key(1)]).unwrap();
        assert_eq!(fresh.reads, vec![(Key(0), v0_new), (Key(1), v1_new)]);
    }

    #[test]
    fn blacklist_is_transitive_across_dependency_chains() {
        // reader reads old X0; writer writes X0', then X1 dep X0'; a
        // second writer reads X1 and writes... a chain X0' → X1' → X0''?
        // Here: chain over two keys: X0' then X1'(dep X0'), then another
        // client reads X1' and writes X0''(dep X1'). The old reader of
        // X0 must not see X0'' either — its blacklist propagates through
        // X1'.
        let mut c = minimal();
        let v0_old = c.alloc_value();
        let v1_old = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), v0_old)]).unwrap();
        c.write_tx(ClientId(0), &[(Key(1), v1_old)]).unwrap();

        let reader = ClientId(1);
        let rpid = c.topo.client_pid(reader);
        // Freeze BOTH of the reader's request links; deliver to p0 only.
        c.world.hold(rpid, ProcessId(1));
        let rot = c.alloc_tx();
        c.world.inject(
            rpid,
            Msg::InvokeRot {
                id: rot,
                keys: vec![Key(0), Key(1)],
            },
        );
        c.world.run_for(MILLIS); // p0 served old X0

        // Chain: c0 writes X0'; c2 reads (X0', X1) and writes X1' dep X0';
        // c3 reads X1' and writes X0'' dep X1'.
        let v0_p = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), v0_p)]).unwrap();
        c.read_tx(ClientId(2), &[Key(0)]).unwrap();
        let v1_p = c.alloc_value();
        c.write_tx(ClientId(2), &[(Key(1), v1_p)]).unwrap();
        c.read_tx(ClientId(3), &[Key(1)]).unwrap();
        let v0_pp = c.alloc_value();
        c.write_tx(ClientId(3), &[(Key(0), v0_pp)]).unwrap();

        // The old reader's frozen request to p1 now lands: it must see
        // v1_old (not v1_p which depends on X0').
        c.world.release(rpid, ProcessId(1));
        c.world
            .run_until_within(cbf_sim::SECONDS, |w| w.actor(rpid).completed(rot).is_some());
        let done = c.world.actor_mut(rpid).take_completed(rot).unwrap();
        assert_eq!(done.reads, vec![(Key(0), v0_old), (Key(1), v1_old)]);

        // Everything recorded stays causal.
        assert!(c.check().is_ok(), "{:?}", c.check().violations);
    }

    #[test]
    fn writes_pay_the_latency_of_old_reader_queries() {
        let mut c = minimal();
        // Prime the context so the second write carries a cross-server dep.
        let v0 = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), v0)]).unwrap();
        let w = c.write_tx_auto(ClientId(0), &[Key(1)]).unwrap();
        // One client round...
        assert_eq!(w.audit.rounds, 1);
        // ...but the ack took client→p1 + p1→p0 + p0→p1 + p1→client:
        // 4 one-way hops at 50 µs each.
        assert_eq!(w.audit.latency, 200 * cbf_sim::MICROS);
    }

    #[test]
    fn chaotic_schedules_stay_causal() {
        for seed in 0..5u64 {
            let mut c = minimal();
            for i in 0..12u32 {
                let cl = ClientId(i % 4);
                if i % 3 == 0 {
                    c.write_tx_auto(cl, &[Key(i % 2)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            c.world.run_chaotic(seed, 100_000);
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
        }
    }
}
