//! The impossible claimants: protocols that *claim* all four properties —
//! multi-object write transactions (W) **and** one-round (R), one-value
//! (V), non-blocking (N) read-only transactions.
//!
//! Theorem 1 says no such causally consistent protocol exists, so these
//! are exactly the protocols the theorem machinery in `cbf-core` attacks:
//! the adversary finds a schedule in which a fast ROT returns a mixed
//! snapshot, which the checker rejects.
//!
//! The family is parameterized by the number of **write coordination
//! phases** `P`:
//!
//! * `P = 1` ([`NaiveFast`]): servers apply writes the moment they
//!   arrive; the visibility window between the two servers is
//!   macroscopic.
//! * `P = 2` ([`NaiveTwoPhase`]): writes are buffered at phase 1 and made
//!   visible by the phase-2 (commit) message — atomic commitment. The
//!   window shrinks to the gap between the two phase-2 deliveries.
//! * any `P`: servers buffer through `P−1` phases and apply on the final
//!   one. More coordination keeps narrowing the window — and the
//!   adversary keeps finding it. This is the paper's induction made
//!   tangible: measured by `cbf-core`, a claimant with `P ≥ 2` phases
//!   yields `2P − 3` forced messages and is caught at induction step
//!   `k = 2P − 2` (one-phase dies immediately at `k = 1`).
//!
//! Reads are genuinely fast: one round, one value per stored object,
//! served in the receiving step.

use crate::common::{Completed, ProtocolNode, Topology};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::HashMap;

/// The message alphabet shared by every phase count.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: start a read-only transaction at a client.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: start a write-only transaction at a client.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → server: read these keys (all stored at that server).
    ReadReq { id: TxId, keys: Vec<Key> },
    /// Server → client: the values. One value per requested key — in the
    /// paper's two-object deployment, exactly one value per message.
    ReadResp { id: TxId, reads: Vec<(Key, Value)> },
    /// Client → server: coordination phase `round` of a write
    /// transaction. Phase 1 carries the writes; later phases reference
    /// them. The final phase makes the writes visible.
    Phase {
        id: TxId,
        round: u8,
        writes: Vec<(Key, Value)>,
    },
    /// Server → client: phase `round` acknowledged.
    PhaseAck { id: TxId, round: u8 },
    /// Server → server: decoy gossip (GOSSIP variants only) — real
    /// communication, zero protection.
    Gossip,
}

/// In-flight transaction bookkeeping at a client.
#[derive(Clone, Debug)]
struct Pending {
    reads: Vec<(Key, Value)>,
    awaiting: usize,
    /// Servers participating in the write (phase fan-out targets).
    participants: Vec<ProcessId>,
    round: u8,
    invoked_at: u64,
}

/// Client state machine.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    pending: HashMap<TxId, Pending>,
    completed: HashMap<TxId, Completed>,
}

/// Server state machine: a last-writer-wins single-version store plus a
/// buffer of writes still in their coordination phases.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: HashMap<Key, Value>,
    buffered: HashMap<TxId, Vec<(Key, Value)>>,
}

/// A node of the naive claimant family with `P` write phases. When
/// `GOSSIP` is set, servers additionally send a decoy gossip message to
/// their sibling after applying a write — communication that exists but
/// carries no protection. It exercises Lemma 3's *claim 2* machinery:
/// the induction finds forced messages, yet the written values become
/// visible at some `C_k`, and the contradictory execution `δ` catches
/// the protocol there instead.
#[derive(Clone, Debug)]
pub enum NaiveNode<const P: u8, const GOSSIP: bool = false> {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

/// Apply-on-arrival claimant (one phase).
pub type NaiveFast = NaiveNode<1>;
/// Apply-on-arrival claimant whose servers gossip after applying: the
/// claim-2 (δ-execution) test subject.
pub type NaiveChatty = NaiveNode<1, true>;
/// Atomic-commitment claimant (two phases).
pub type NaiveTwoPhase = NaiveNode<2>;
/// A three-phase claimant, for the induction sweep.
pub type NaiveThreePhase = NaiveNode<3>;
/// A four-phase claimant, for the induction sweep.
pub type NaiveFourPhase = NaiveNode<4>;

impl<const P: u8, const GOSSIP: bool> NaiveNode<P, GOSSIP> {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let groups = c.topo.group_by_primary(&keys);
                    let awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::ReadReq { id, keys: ks });
                    }
                    c.pending.insert(
                        id,
                        Pending {
                            reads: Vec::new(),
                            awaiting,
                            participants: Vec::new(),
                            round: 0,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::InvokeWtx { id, writes } => {
                    // Phase 1 carries the writes to every server storing
                    // one of the written keys (all replicas).
                    let mut per_server: std::collections::BTreeMap<ProcessId, Vec<(Key, Value)>> =
                        Default::default();
                    for &(k, v) in &writes {
                        for r in c.topo.replicas(k) {
                            per_server.entry(r).or_default().push((k, v));
                        }
                    }
                    let participants: Vec<ProcessId> = per_server.keys().copied().collect();
                    let awaiting = participants.len();
                    for (server, ws) in per_server {
                        ctx.send(
                            server,
                            Msg::Phase {
                                id,
                                round: 1,
                                writes: ws,
                            },
                        );
                    }
                    c.pending.insert(
                        id,
                        Pending {
                            reads: Vec::new(),
                            awaiting,
                            participants,
                            round: 1,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::ReadResp { id, reads } => {
                    let now = ctx.now();
                    if let Some(p) = c.pending.get_mut(&id) {
                        p.reads.extend(reads);
                        p.awaiting -= 1;
                        if p.awaiting == 0 {
                            let Some(p) = c.pending.remove(&id) else {
                                continue;
                            };
                            let mut reads = p.reads;
                            reads.sort_by_key(|(k, _)| *k);
                            c.completed.insert(
                                id,
                                Completed {
                                    id,
                                    reads,
                                    invoked_at: p.invoked_at,
                                    completed_at: now,
                                },
                            );
                        }
                    }
                }
                Msg::PhaseAck { id, round } => {
                    let now = ctx.now();
                    if let Some(p) = c.pending.get_mut(&id) {
                        if round != p.round {
                            continue; // stale ack from an earlier phase
                        }
                        p.awaiting -= 1;
                        if p.awaiting == 0 {
                            if p.round < P {
                                // Next coordination phase.
                                p.round += 1;
                                p.awaiting = p.participants.len();
                                let round = p.round;
                                for server in p.participants.clone() {
                                    ctx.send(
                                        server,
                                        Msg::Phase {
                                            id,
                                            round,
                                            writes: Vec::new(),
                                        },
                                    );
                                }
                            } else {
                                let Some(p) = c.pending.remove(&id) else {
                                    continue;
                                };
                                c.completed.insert(
                                    id,
                                    Completed {
                                        id,
                                        reads: Vec::new(),
                                        invoked_at: p.invoked_at,
                                        completed_at: now,
                                    },
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::ReadReq { id, keys } => {
                    let reads: Vec<(Key, Value)> = keys
                        .iter()
                        .map(|k| (*k, s.store.get(k).copied().unwrap_or(Value::BOTTOM)))
                        .collect();
                    ctx.send(env.from, Msg::ReadResp { id, reads });
                }
                Msg::Phase { id, round, writes } => {
                    if round == 1 {
                        s.buffered.insert(id, writes);
                    }
                    if round == P {
                        // Final phase: the writes become visible.
                        if let Some(ws) = s.buffered.remove(&id) {
                            for (k, v) in ws {
                                s.store.insert(k, v);
                            }
                        }
                        if GOSSIP {
                            // Decoy chatter to every sibling server.
                            let me = ctx.me();
                            for i in 0..s.topo.num_servers {
                                let srv = ProcessId(i);
                                if srv != me {
                                    ctx.send(srv, Msg::Gossip);
                                }
                            }
                        }
                    }
                    ctx.send(env.from, Msg::PhaseAck { id, round });
                }
                _ => {}
            }
        }
    }
}

impl<const P: u8, const GOSSIP: bool> Actor for NaiveNode<P, GOSSIP> {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            NaiveNode::Client(c) => Self::client_step(c, ctx),
            NaiveNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl<const P: u8, const GOSSIP: bool> ProtocolNode for NaiveNode<P, GOSSIP> {
    const NAME: &'static str = match (P, GOSSIP) {
        (1, false) => "naive-fast",
        (2, false) => "naive-2pc",
        (3, false) => "naive-3pc",
        (4, false) => "naive-4pc",
        (1, true) => "naive-chatty",
        _ => "naive-npc",
    };
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, _id: ProcessId) -> Self {
        NaiveNode::Server(ServerState {
            topo: topo.clone(),
            store: HashMap::new(),
            buffered: HashMap::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        NaiveNode::Client(ClientState {
            topo: topo.clone(),
            pending: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            NaiveNode::Client(c) => c.completed.get(&id),
            NaiveNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            NaiveNode::Client(c) => c.completed.remove(&id),
            NaiveNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v)| !v.is_bottom())
                    .map(|&(k, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::ReadReq { .. } | Msg::Phase { .. })
    }
}

crate::snow_properties! {
    system: "naive claimant family",
    consistency: Causal,
    rounds: 1,
    values: 1,
    nonblocking: true,
    write_tx: true,
    requests: [ReadReq, Phase],
    value_replies: [ReadResp],
    paper_row: none,
    escape_hatch: "claimant: deliberately impossible (fast + W + causal); exists so the theorem machinery has something to catch",
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::ClientId;

    fn minimal<const P: u8>() -> Cluster<NaiveNode<P>> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn naive_fast_round_trip() {
        let mut c = minimal::<1>();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        assert_eq!(w.audit.objects, 2);
        assert_eq!(w.audit.rounds, 1);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads.len(), 2);
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.reads[1].1, w.writes[1].1);
    }

    #[test]
    fn naive_fast_claims_all_fast_properties_under_friendly_schedules() {
        let mut c = minimal::<1>();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        for i in 0..10 {
            c.read_tx(ClientId(1 + (i % 3)), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.fast_rots(), "profile: {p:?}");
        assert!(p.multi_write_supported);
        assert!(p.claims_the_impossible());
        // And under friendly schedules the history even checks out.
        assert!(c.check().is_ok());
    }

    #[test]
    fn phase_counts_drive_write_rounds() {
        // P phases ⇒ P client rounds for a write.
        let w1 = minimal::<1>()
            .write_tx_auto(ClientId(0), &[Key(0), Key(1)])
            .unwrap();
        assert_eq!(w1.audit.rounds, 1);
        let w2 = minimal::<2>()
            .write_tx_auto(ClientId(0), &[Key(0), Key(1)])
            .unwrap();
        assert_eq!(w2.audit.rounds, 2);
        let w4 = minimal::<4>()
            .write_tx_auto(ClientId(0), &[Key(0), Key(1)])
            .unwrap();
        assert_eq!(w4.audit.rounds, 4);
    }

    #[test]
    fn buffered_writes_stay_invisible_until_the_last_phase() {
        let mut c = minimal::<3>();
        let writer = c.topo.client_pid(ClientId(0));
        let id = c.alloc_tx();
        let (v0, v1) = (c.alloc_value(), c.alloc_value());
        c.world.inject(
            writer,
            Msg::InvokeWtx {
                id,
                writes: vec![(Key(0), v0), (Key(1), v1)],
            },
        );
        // Two phases' worth of traffic ≈ 2 rounds × 2 hops × 50 µs; the
        // third (visibility) phase is sent at 200 µs and still in flight
        // at 220 µs — freeze it there.
        c.world.run_for(220 * cbf_sim::MICROS);
        c.world.hold(writer, ProcessId(0));
        c.world.hold(writer, ProcessId(1));
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, Value::BOTTOM);
        // Release the final phase: the writes become visible.
        c.world.release(writer, ProcessId(0));
        c.world.release(writer, ProcessId(1));
        c.world.run_until_within(cbf_sim::SECONDS, |w| {
            w.actor(writer).completed(id).is_some()
        });
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads, vec![(Key(0), v0), (Key(1), v1)]);
    }

    #[test]
    fn reading_before_any_write_returns_bottom() {
        let mut c = minimal::<1>();
        let r = c.read_tx(ClientId(0), &[Key(0)]).unwrap();
        assert_eq!(r.reads, vec![(Key(0), Value::BOTTOM)]);
        // ⊥ is not a written value: zero values in the message.
        assert_eq!(r.audit.max_values_per_msg, 0);
    }

    #[test]
    fn adversarial_interleaving_breaks_naive_fast() {
        // The violation the theorem predicts, by hand: hold the write to
        // p1, let the write to p0 land, read both keys.
        let mut c = minimal::<1>();
        // Causal setup: writer reads initial values first.
        c.write(ClientId(0), Key(0), Value(101)).unwrap();
        c.write(ClientId(0), Key(1), Value(102)).unwrap();
        let writer = ClientId(2);
        let setup = c.read_tx(writer, &[Key(0), Key(1)]).unwrap();
        assert_eq!(
            setup.reads,
            vec![(Key(0), Value(101)), (Key(1), Value(102))]
        );

        // Freeze the writer→p1 link, then issue the multi-write.
        let wpid = c.topo.client_pid(writer);
        c.world.hold(wpid, ProcessId(1));
        let id = c.alloc_tx();
        c.world.inject(
            wpid,
            Msg::InvokeWtx {
                id,
                writes: vec![(Key(0), Value(201)), (Key(1), Value(202))],
            },
        );
        // p0 applies its half; p1 never hears.
        c.world.run_for(cbf_sim::MILLIS);

        // A fresh client reads both keys: mixed snapshot.
        let r = c.read_tx(ClientId(3), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads, vec![(Key(0), Value(201)), (Key(1), Value(102))]);

        // Record the incomplete write in the history for the checker
        // (the paper's Lemma 1 orders it via the writer's earlier read).
        let mut h = c.history().clone();
        h.push(cbf_model::history::TxRecord {
            id,
            client: writer,
            reads: vec![],
            writes: vec![(Key(0), Value(201)), (Key(1), Value(202))],
            invoked_at: 0,
            completed_at: 0,
        });
        assert!(!cbf_model::check_causal(&h).is_ok());
    }

    #[test]
    fn two_phase_commits_atomically_per_server() {
        let mut c = minimal::<2>();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        assert_eq!(w.audit.rounds, 2);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.audit.rounds, 1);
        assert!(r.audit.is_fast());
        assert_eq!(r.reads[0].1, w.writes[0].1);
    }

    #[test]
    fn partially_replicated_naive_fast_serves_reads_from_primary() {
        let topo = Topology::partially_replicated(3, 4, 3, 2);
        let mut c: Cluster<NaiveFast> = Cluster::new(topo);
        let w = c
            .write_tx(ClientId(0), &[(Key(0), Value(7)), (Key(2), Value(8))])
            .unwrap();
        // Key 0 lives on servers {0,1}; key 2 on {2,0}: 3 distinct servers.
        assert_eq!(w.audit.rounds, 1);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(2)]).unwrap();
        assert_eq!(r.reads, vec![(Key(0), Value(7)), (Key(2), Value(8))]);
    }
}
