//! The uniform protocol interface every design-space implementation
//! satisfies, so the auditor, the theorem machinery and the benchmarks can
//! drive them interchangeably.

use crate::common::topology::Topology;
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, ProcessId, Time};

/// A transaction that finished at its client: the response the paper's
/// model delivers (a value per read object, an ack per write).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completed {
    /// The transaction.
    pub id: TxId,
    /// `(key, value)` responses for the read-set (empty for write-only).
    pub reads: Vec<(Key, Value)>,
    /// Virtual time of invocation.
    pub invoked_at: Time,
    /// Virtual time of completion.
    pub completed_at: Time,
}

/// Why a transaction could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// The protocol does not support multi-object write transactions —
    /// the functionality half of the paper's trade-off.
    MultiWriteUnsupported,
    /// The transaction did not complete within the run bound (a blocked
    /// protocol under an adversarial schedule, or a bug).
    Incomplete,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::MultiWriteUnsupported => {
                write!(f, "protocol supports only single-object write transactions")
            }
            TxError::Incomplete => write!(f, "transaction did not complete within the run bound"),
        }
    }
}

impl std::error::Error for TxError {}

/// A node (client or server state machine) of one protocol.
///
/// The same `Self` type plays both roles — protocols define an enum — so
/// one [`cbf_sim::World`] hosts the whole deployment. The associated
/// functions let the generic [`crate::Cluster`] construct deployments,
/// inject invocations, poll for completions and audit messages without
/// knowing the protocol.
pub trait ProtocolNode: Actor + Sized {
    /// Human-readable protocol name (Table 1's "System" column).
    const NAME: &'static str;
    /// The consistency level the protocol is designed for (Table 1's
    /// "Consistency" column); checked empirically by the auditor.
    const CONSISTENCY: ConsistencyLevel;
    /// Whether the protocol claims multi-object write transactions (W).
    const SUPPORTS_MULTI_WRITE: bool;

    /// Construct the server state machine for `id`.
    fn server(topo: &Topology, id: ProcessId) -> Self;

    /// Construct the client state machine for `id`.
    fn client(topo: &Topology, id: ProcessId) -> Self;

    /// The injection message that starts a read-only transaction at a
    /// client.
    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Self::Msg;

    /// The injection message that starts a write-only transaction.
    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Self::Msg;

    /// Peek at a finished transaction on a client node (`None` while in
    /// flight). The record stays until [`ProtocolNode::take_completed`].
    fn completed(&self, id: TxId) -> Option<&Completed>;

    /// Remove and return a finished transaction's record.
    fn take_completed(&mut self, id: TxId) -> Option<Completed>;

    /// The maximum number of *written values* this message carries for
    /// any single object — Definition 4's one-value property, in the
    /// per-object form its general version (Definition 5) makes precise:
    /// a response may carry one value per object it serves, but carrying
    /// several values (versions, siblings, dependency payloads) of one
    /// object is the leak the property forbids. Timestamps and other
    /// metadata are free. Audited over server→client messages.
    fn msg_values(msg: &Self::Msg) -> u32;

    /// Is this message a client→server transactional request? Used by the
    /// trace auditor to count rounds.
    fn msg_is_request(msg: &Self::Msg) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_error_displays() {
        assert!(TxError::MultiWriteUnsupported
            .to_string()
            .contains("single-object"));
        assert!(TxError::Incomplete.to_string().contains("complete"));
    }

    #[test]
    fn completed_is_comparable() {
        let a = Completed {
            id: TxId(1),
            reads: vec![(Key(0), Value(5))],
            invoked_at: 0,
            completed_at: 10,
        };
        assert_eq!(a.clone(), a);
    }
}
