//! Cluster layout: which process is a server, which is a client, and
//! which server(s) store which object.

use cbf_model::{ClientId, Key};
use cbf_sim::ProcessId;

/// The shape of a simulated deployment.
///
/// Process ids are laid out as `[servers..., clients...]`: server `i` is
/// `ProcessId(i)` for `i < num_servers`, client `j` is
/// `ProcessId(num_servers + j)`.
///
/// In the default (disjoint) layout each key lives on exactly one server
/// (`key % num_servers`). A partially replicated layout stores key `k` on
/// `replication` consecutive servers starting at `k % num_servers` — each
/// server then stores several keys, the replica sets overlap, and no
/// server stores everything (Appendix A's setting) provided
/// `replication < num_servers`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of servers (`m > 1` in the paper).
    pub num_servers: u32,
    /// Number of clients (the theorem needs at least four).
    pub num_clients: u32,
    /// Number of objects stored in the system.
    pub num_keys: u32,
    /// Copies of each key (1 = disjoint shards; `2..num_servers` =
    /// partial replication).
    pub replication: u32,
    /// Protocol-specific tuning knob (0 = protocol default). Used by the
    /// ablation benchmarks: Spanner-like reads it as the TrueTime ε,
    /// the stabilization protocols as their broadcast period (both in
    /// virtual ns).
    pub tuning: u64,
    /// Per-request retry timeout base in virtual ns; 0 (the default)
    /// disables client retries entirely, which keeps fault-free traces
    /// byte-identical to the pre-nemesis simulator. When set, clients
    /// arm a timer per transaction and re-send outstanding requests with
    /// exponential backoff (base, 2×base, 4×base, …) up to
    /// [`crate::common::MAX_RETRIES`] attempts.
    pub retry_after: u64,
}

impl Topology {
    /// The paper's minimal setting: two servers, two objects (one each),
    /// `n` clients.
    pub fn minimal(num_clients: u32) -> Self {
        Topology {
            num_servers: 2,
            num_clients,
            num_keys: 2,
            replication: 1,
            tuning: 0,
            retry_after: 0,
        }
    }

    /// A sharded, non-replicated deployment.
    pub fn sharded(num_servers: u32, num_clients: u32, num_keys: u32) -> Self {
        assert!(num_servers > 0 && num_keys >= num_servers);
        Topology {
            num_servers,
            num_clients,
            num_keys,
            replication: 1,
            tuning: 0,
            retry_after: 0,
        }
    }

    /// A partially replicated deployment (Appendix A): each key on
    /// `replication` servers, no server holding every key.
    pub fn partially_replicated(
        num_servers: u32,
        num_clients: u32,
        num_keys: u32,
        replication: u32,
    ) -> Self {
        assert!(replication >= 1 && replication < num_servers);
        Topology {
            num_servers,
            num_clients,
            num_keys,
            replication,
            tuning: 0,
            retry_after: 0,
        }
    }

    /// Set the protocol tuning knob (builder style).
    pub fn with_tuning(mut self, tuning: u64) -> Self {
        self.tuning = tuning;
        self
    }

    /// Enable client-side retry with the given timeout base (builder
    /// style). See [`Topology::retry_after`].
    pub fn with_retry(mut self, base: u64) -> Self {
        self.retry_after = base;
        self
    }

    /// Total processes.
    pub fn num_processes(&self) -> usize {
        (self.num_servers + self.num_clients) as usize
    }

    /// Is this process a server?
    pub fn is_server(&self, p: ProcessId) -> bool {
        p.0 < self.num_servers
    }

    /// All server process ids.
    pub fn servers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.num_servers).map(ProcessId)
    }

    /// All client process ids.
    pub fn clients(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (self.num_servers..self.num_servers + self.num_clients).map(ProcessId)
    }

    /// The process id of a client.
    pub fn client_pid(&self, c: ClientId) -> ProcessId {
        assert!(c.0 < self.num_clients, "client {c:?} out of range");
        ProcessId(self.num_servers + c.0)
    }

    /// The client id of a client process.
    pub fn client_of(&self, p: ProcessId) -> Option<ClientId> {
        (p.0 >= self.num_servers && p.0 < self.num_servers + self.num_clients)
            .then(|| ClientId(p.0 - self.num_servers))
    }

    /// The servers storing `key`, primary first.
    pub fn replicas(&self, key: Key) -> Vec<ProcessId> {
        let primary = key.0 % self.num_servers;
        (0..self.replication)
            .map(|r| ProcessId((primary + r) % self.num_servers))
            .collect()
    }

    /// The primary server of `key` (its canonical home).
    pub fn primary(&self, key: Key) -> ProcessId {
        ProcessId(key.0 % self.num_servers)
    }

    /// Does `server` store `key`?
    pub fn stores(&self, server: ProcessId, key: Key) -> bool {
        self.replicas(key).contains(&server)
    }

    /// The keys stored by `server`.
    pub fn keys_of(&self, server: ProcessId) -> Vec<Key> {
        (0..self.num_keys)
            .map(Key)
            .filter(|k| self.stores(server, *k))
            .collect()
    }

    /// Group `keys` by their primary server (for request fan-out).
    pub fn group_by_primary(&self, keys: &[Key]) -> Vec<(ProcessId, Vec<Key>)> {
        let mut groups: std::collections::BTreeMap<ProcessId, Vec<Key>> = Default::default();
        for &k in keys {
            groups.entry(self.primary(k)).or_default().push(k);
        }
        groups.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_layout() {
        let t = Topology::minimal(4);
        assert_eq!(t.num_processes(), 6);
        assert!(t.is_server(ProcessId(0)));
        assert!(t.is_server(ProcessId(1)));
        assert!(!t.is_server(ProcessId(2)));
        assert_eq!(t.client_pid(ClientId(0)), ProcessId(2));
        assert_eq!(t.client_of(ProcessId(3)), Some(ClientId(1)));
        assert_eq!(t.client_of(ProcessId(0)), None);
        assert_eq!(t.primary(Key(0)), ProcessId(0));
        assert_eq!(t.primary(Key(1)), ProcessId(1));
        assert_eq!(t.replicas(Key(1)), vec![ProcessId(1)]);
    }

    #[test]
    fn sharded_spreads_keys() {
        let t = Topology::sharded(3, 2, 9);
        assert_eq!(t.keys_of(ProcessId(0)), vec![Key(0), Key(3), Key(6)]);
        assert_eq!(t.keys_of(ProcessId(2)).len(), 3);
    }

    #[test]
    fn partial_replication_overlaps_without_full_copies() {
        let t = Topology::partially_replicated(3, 4, 3, 2);
        assert_eq!(t.replicas(Key(0)), vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(t.replicas(Key(2)), vec![ProcessId(2), ProcessId(0)]);
        // Every server stores some but not all keys.
        for s in t.servers() {
            let ks = t.keys_of(s);
            assert!(!ks.is_empty());
            assert!(ks.len() < t.num_keys as usize);
        }
    }

    #[test]
    fn group_by_primary_partitions_request() {
        let t = Topology::sharded(2, 1, 4);
        let groups = t.group_by_primary(&[Key(0), Key(1), Key(2), Key(3)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (ProcessId(0), vec![Key(0), Key(2)]));
        assert_eq!(groups[1], (ProcessId(1), vec![Key(1), Key(3)]));
    }

    #[test]
    #[should_panic]
    fn client_pid_bounds_checked() {
        Topology::minimal(2).client_pid(ClientId(5));
    }
}
