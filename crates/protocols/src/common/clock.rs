//! Logical clocks used by the protocol implementations.

use cbf_sim::Time;

/// A Lamport clock whose ticks embed a process id in the low bits, so
/// timestamps from different processes never collide and are totally
/// ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LamportClock {
    counter: u64,
    node: u8,
}

impl LamportClock {
    /// A fresh clock for node `node`.
    pub fn new(node: u8) -> Self {
        LamportClock { counter: 0, node }
    }

    /// Advance and return a fresh timestamp strictly greater than every
    /// timestamp previously returned or witnessed.
    pub fn tick(&mut self) -> u64 {
        self.counter += 1;
        (self.counter << 8) | self.node as u64
    }

    /// Incorporate a timestamp received from elsewhere (Lamport's rule).
    pub fn witness(&mut self, ts: u64) {
        self.counter = self.counter.max(ts >> 8);
    }

    /// The latest returned timestamp (0 if never ticked).
    pub fn current(&self) -> u64 {
        if self.counter == 0 {
            0
        } else {
            (self.counter << 8) | self.node as u64
        }
    }
}

/// A hybrid logical clock over virtual time: timestamps are
/// `max(physical, logical+1)` with the node id in the low bits.
/// Used by Wren-style stabilization, where timestamps must both respect
/// causality and loosely track real (virtual) time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridClock {
    last: u64,
    node: u8,
}

impl HybridClock {
    /// A fresh clock for node `node`.
    pub fn new(node: u8) -> Self {
        HybridClock { last: 0, node }
    }

    /// A fresh timestamp at virtual time `now`.
    pub fn tick(&mut self, now: Time) -> u64 {
        self.last = self.last.max(now) + 1;
        (self.last << 8) | self.node as u64
    }

    /// Incorporate a remote timestamp.
    pub fn witness(&mut self, ts: u64) {
        self.last = self.last.max(ts >> 8);
    }

    /// The physical component of the last timestamp.
    pub fn last_physical(&self) -> u64 {
        self.last
    }
}

/// A simulated TrueTime oracle: each process owns a clock whose offset
/// from virtual time is bounded by `epsilon`; `now_interval` returns the
/// guaranteed enclosing interval, exactly as Spanner's API does.
#[derive(Clone, Copy, Debug)]
pub struct TrueTime {
    /// This process's fixed clock skew (|skew| ≤ epsilon), in virtual ns.
    pub skew: i64,
    /// The advertised uncertainty bound, in virtual ns.
    pub epsilon: u64,
}

impl TrueTime {
    /// An oracle with the given skew and bound. Panics if the skew
    /// exceeds the bound (that deployment would be incorrect).
    pub fn new(skew: i64, epsilon: u64) -> Self {
        assert!(skew.unsigned_abs() <= epsilon, "skew exceeds epsilon");
        TrueTime { skew, epsilon }
    }

    /// A deterministic per-node skew in `[-epsilon/2, epsilon/2]`,
    /// derived from the node id and a seed.
    pub fn for_node(node: u32, epsilon: u64, seed: u64) -> Self {
        let h = (node as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed)
            .rotate_left(17);
        let half = (epsilon / 2) as i64;
        let skew = if half == 0 {
            0
        } else {
            (h % (2 * half as u64 + 1)) as i64 - half
        };
        TrueTime::new(skew, epsilon)
    }

    /// This process's local clock reading at virtual time `now`.
    pub fn local(&self, now: Time) -> u64 {
        (now as i64 + self.skew).max(0) as u64
    }

    /// TrueTime's `TT.now()`: `[earliest, latest]` guaranteed to contain
    /// true (virtual) time.
    pub fn now_interval(&self, now: Time) -> (u64, u64) {
        let local = self.local(now);
        (local.saturating_sub(self.epsilon), local + self.epsilon)
    }

    /// `TT.after(t)`: true once `t` is definitely in the past.
    pub fn after(&self, now: Time, t: u64) -> bool {
        self.now_interval(now).0 > t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_is_monotonic_and_unique_per_node() {
        let mut a = LamportClock::new(1);
        let mut b = LamportClock::new(2);
        let t1 = a.tick();
        let t2 = b.tick();
        assert_ne!(t1, t2); // node bits differ
        let t3 = a.tick();
        assert!(t3 > t1);
    }

    #[test]
    fn lamport_witness_jumps_forward() {
        let mut a = LamportClock::new(1);
        a.witness((100 << 8) | 2);
        assert!(a.tick() > (100 << 8));
    }

    #[test]
    fn lamport_current_before_tick_is_zero() {
        assert_eq!(LamportClock::new(3).current(), 0);
    }

    #[test]
    fn hybrid_tracks_physical_time() {
        let mut c = HybridClock::new(0);
        let t1 = c.tick(1000);
        assert!(t1 >> 8 >= 1000);
        // Logical component keeps it monotonic even if time stalls.
        let t2 = c.tick(1000);
        assert!(t2 > t1);
        // Witnessing a future timestamp pulls the clock forward.
        c.witness((5000 << 8) | 1);
        assert!(c.tick(1000) >> 8 > 5000);
    }

    #[test]
    fn truetime_interval_contains_truth() {
        let tt = TrueTime::new(-300, 1000);
        let now = 10_000;
        let (lo, hi) = tt.now_interval(now);
        assert!(lo <= now && now <= hi, "[{lo},{hi}] should contain {now}");
    }

    #[test]
    fn truetime_after_is_conservative() {
        let tt = TrueTime::new(400, 1000);
        // after(t) must imply t < true now.
        for now in [0u64, 500, 1000, 5000, 100_000] {
            if tt.after(now, 3000) {
                assert!(now > 3000);
            }
        }
        // And it eventually fires.
        assert!(tt.after(10_000, 3000));
    }

    #[test]
    fn for_node_respects_bound_and_is_deterministic() {
        for node in 0..50 {
            let a = TrueTime::for_node(node, 800, 42);
            let b = TrueTime::for_node(node, 800, 42);
            assert_eq!(a.skew, b.skew);
            assert!(a.skew.unsigned_abs() <= 800);
        }
        // Different nodes get different skews at least sometimes.
        let skews: std::collections::HashSet<i64> = (0..20)
            .map(|n| TrueTime::for_node(n, 800, 42).skew)
            .collect();
        assert!(skews.len() > 1);
    }

    #[test]
    #[should_panic(expected = "skew exceeds epsilon")]
    fn truetime_rejects_out_of_bound_skew() {
        TrueTime::new(2000, 1000);
    }

    #[test]
    fn zero_epsilon_means_perfect_clock() {
        let tt = TrueTime::for_node(7, 0, 1);
        assert_eq!(tt.skew, 0);
        assert_eq!(tt.now_interval(500), (500, 500));
    }
}
