//! Machine-readable SNOW property declarations.
//!
//! Every protocol module declares the `(R, V, N, W)` tuple it claims —
//! the same four properties the paper's Table 1 tabulates — in a
//! [`snow_properties!`] block. The declaration is consumed three times:
//!
//! 1. **Statically** by `snowlint` (`cargo run -p snowlint`), which
//!    re-derives the message-round structure from the module's `Msg`
//!    enum and `ProtocolNode` handler signatures and cross-checks both
//!    the declaration and the Table 1 exhibit data in
//!    `crates/core/src/audit.rs`.
//! 2. **At runtime** by the `snow_decls` test suites, which compare the
//!    declaration against the `ProtocolNode` associated consts.
//! 3. **By the theorem shape check**: a declaration that claims fast
//!    ROTs (R=1, V=1, N) *and* multi-object write transactions under a
//!    causal-or-stronger level contradicts the paper's Theorem 1 and
//!    must carry an explicit `escape_hatch` justification (the naive
//!    claimant family, the †-style pinned protocol).

use cbf_model::ConsistencyLevel;

/// The declared SNOW tuple of one protocol module, plus the message
/// vocabulary the tuple is claimed over. Produced by
/// [`snow_properties!`]; see the macro for field semantics.
#[derive(Clone, Copy, Debug)]
pub struct SnowDecl {
    /// Protocol name; must equal `ProtocolNode::NAME`.
    pub system: &'static str,
    /// Designed-for consistency level; must equal
    /// `ProtocolNode::CONSISTENCY`.
    pub consistency: ConsistencyLevel,
    /// R: worst-case client rounds per read-only transaction.
    /// `None` means unbounded (client-retry designs such as Occult).
    pub rounds: Option<u32>,
    /// V: worst-case written values per object per server→client
    /// message. `None` means unbounded (fat-message designs).
    pub values: Option<u32>,
    /// N: no server ever defers a ROT response.
    pub nonblocking: bool,
    /// W: multi-object write transactions are supported.
    pub write_tx: bool,
    /// The client→server request variants of the `Msg` enum — exactly
    /// the variants `ProtocolNode::msg_is_request` matches.
    pub requests: &'static [&'static str],
    /// The server→client reply variants that carry written values —
    /// exactly the variants `ProtocolNode::msg_values` counts.
    pub value_replies: &'static [&'static str],
    /// The system's row in the paper's Table 1 (`paper_table1()` in
    /// `cbf-core`), or `None` for artifacts with no published row.
    pub paper_row: Option<&'static str>,
    /// Why this declaration may legally claim the impossible corner
    /// (fast + W + causal), or `None` for protocols inside the
    /// theorem's scope.
    pub escape_hatch: Option<&'static str>,
}

impl SnowDecl {
    /// Definition 4 over the declaration: one round, one value,
    /// non-blocking.
    pub fn fast(&self) -> bool {
        self.rounds == Some(1) && self.values == Some(1) && self.nonblocking
    }

    /// Does the declaration claim the combination Theorem 1 forbids?
    pub fn claims_the_impossible(&self) -> bool {
        self.fast() && self.write_tx && self.consistency.implies_causal()
    }
}

/// Declare a protocol module's SNOW tuple (see [`SnowDecl`]).
///
/// Fields are given in fixed order. `rounds`/`values` accept an integer
/// literal or `unbounded`; `paper_row`/`escape_hatch` accept a string
/// literal or `none`. The macro expands to a `pub static SNOW_DECL`,
/// which `crate::all_snow_decls` collects.
#[macro_export]
macro_rules! snow_properties {
    (
        system: $system:literal,
        consistency: $cons:ident,
        rounds: $rounds:tt,
        values: $values:tt,
        nonblocking: $nb:literal,
        write_tx: $w:literal,
        requests: [$($req:ident),* $(,)?],
        value_replies: [$($rep:ident),* $(,)?],
        paper_row: $paper:tt,
        escape_hatch: $escape:tt $(,)?
    ) => {
        /// Machine-readable SNOW `(R, V, N, W)` declaration for this
        /// protocol module. Cross-checked statically by `snowlint` and
        /// at runtime by the `snow_decls` tests.
        pub static SNOW_DECL: $crate::common::snow::SnowDecl = $crate::common::snow::SnowDecl {
            system: $system,
            consistency: $crate::snow_consistency!($cons),
            rounds: $crate::snow_bound!($rounds),
            values: $crate::snow_bound!($values),
            nonblocking: $nb,
            write_tx: $w,
            requests: &[$(stringify!($req)),*],
            value_replies: &[$(stringify!($rep)),*],
            paper_row: $crate::snow_opt_str!($paper),
            escape_hatch: $crate::snow_opt_str!($escape),
        };
    };
}

/// Helper for [`snow_properties!`]: `unbounded` or an integer bound.
#[macro_export]
macro_rules! snow_bound {
    (unbounded) => {
        None
    };
    ($n:literal) => {
        Some($n)
    };
}

/// Helper for [`snow_properties!`]: `none` or a string literal.
#[macro_export]
macro_rules! snow_opt_str {
    (none) => {
        None
    };
    ($s:literal) => {
        Some($s)
    };
}

/// Helper for [`snow_properties!`]: a [`ConsistencyLevel`] variant name.
#[macro_export]
macro_rules! snow_consistency {
    ($cons:ident) => {
        $crate::common::snow::DeclConsistency::$cons.level()
    };
}

/// The consistency vocabulary [`snow_properties!`] accepts — a mirror of
/// [`ConsistencyLevel`] that lets the macro resolve a bare variant ident
/// in a `static` initializer without the caller importing `cbf_model`.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)] // variants mirror `ConsistencyLevel` one-to-one
pub enum DeclConsistency {
    ReadAtomicity,
    Causal,
    SnapshotIsolation,
    PerClientPSI,
    Serializable,
    ProcessOrderedSerializable,
    StrictSerializable,
}

impl DeclConsistency {
    /// The `cbf_model` level this vocabulary entry names.
    pub const fn level(self) -> ConsistencyLevel {
        match self {
            DeclConsistency::ReadAtomicity => ConsistencyLevel::ReadAtomicity,
            DeclConsistency::Causal => ConsistencyLevel::Causal,
            DeclConsistency::SnapshotIsolation => ConsistencyLevel::SnapshotIsolation,
            DeclConsistency::PerClientPSI => ConsistencyLevel::PerClientPSI,
            DeclConsistency::Serializable => ConsistencyLevel::Serializable,
            DeclConsistency::ProcessOrderedSerializable => {
                ConsistencyLevel::ProcessOrderedSerializable
            }
            DeclConsistency::StrictSerializable => ConsistencyLevel::StrictSerializable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_and_impossible_predicates() {
        let mut d = SnowDecl {
            system: "t",
            consistency: ConsistencyLevel::Causal,
            rounds: Some(1),
            values: Some(1),
            nonblocking: true,
            write_tx: true,
            requests: &[],
            value_replies: &[],
            paper_row: None,
            escape_hatch: None,
        };
        assert!(d.fast());
        assert!(d.claims_the_impossible());
        d.write_tx = false;
        assert!(!d.claims_the_impossible());
        d.rounds = None;
        assert!(!d.fast());
    }

    #[test]
    fn decl_consistency_mirrors_model() {
        assert_eq!(DeclConsistency::Causal.level(), ConsistencyLevel::Causal);
        assert_eq!(
            DeclConsistency::StrictSerializable.level(),
            ConsistencyLevel::StrictSerializable
        );
    }
}
