//! `Wire` — the hand-rolled, dependency-free binary codec the cbf-net
//! socket runtime uses to move each protocol's `Msg` alphabet across
//! real TCP connections.
//!
//! Design rules, in order of importance:
//!
//! 1. **Decoding never panics.** Truncated buffers, unknown enum tags
//!    and absurd length prefixes all surface as [`WireError`]. The
//!    framing layer hands this function bytes straight off a socket;
//!    a malformed frame must be a diagnosable error, not a crash.
//! 2. **Encode∘decode is the identity** for every message a protocol
//!    can construct — property-tested per variant in
//!    `tests/wire_roundtrip.rs`.
//! 3. **No derives, no reflection.** Each `Msg` enum writes an explicit
//!    one-byte variant tag followed by its fields; integers are
//!    fixed-width little-endian. The format is versioned socially (the
//!    launcher always spawns peers from the same binary), so there is
//!    no negotiation or evolution machinery.

use cbf_model::{ClientId, Key, TxId, Value};
use cbf_sim::ProcessId;

/// Why a buffer failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// An enum tag byte matched no variant of `what`.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeded the sanity cap — either corruption or
    /// a hostile frame; decoding stops before allocating.
    Oversize {
        /// The type being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated mid-value"),
            WireError::BadTag { what, tag } => write!(f, "unknown tag {tag} for {what}"),
            WireError::Oversize { what, len } => {
                write!(f, "length prefix {len} for {what} exceeds the sanity cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Sequences longer than this fail to decode with
/// [`WireError::Oversize`] before any allocation. Far above anything a
/// protocol sends (ROTs carry a handful of keys), far below anything
/// that could amplify a corrupt length prefix into an OOM.
pub const MAX_SEQ_LEN: u64 = 1 << 20;

/// Binary encode/decode for one type. See the module docs for the
/// format rules.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a value from the front of `buf`, advancing it past the
    /// consumed bytes. Never panics on malformed input.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a value that must consume the whole buffer — the shape a
    /// framed message has (one message per frame, no trailing bytes).
    fn from_bytes(mut buf: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Ok(v)
        } else {
            // Trailing garbage means the frame does not contain exactly
            // one value: corruption, not a shorter encoding.
            Err(WireError::Truncated)
        }
    }
}

fn take<'b>(buf: &mut &'b [u8], n: usize) -> Result<&'b [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(take(buf, 1)?[0])
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let b = take(buf, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let b = take(buf, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match take(buf, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match take(buf, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)? as u64;
        if n > MAX_SEQ_LEN {
            return Err(WireError::Oversize {
                what: "Vec",
                len: n,
            });
        }
        // No with_capacity(n): a short hostile prefix must fail with
        // Truncated before reserving what the prefix claims.
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Wire for Key {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Key(u32::decode(buf)?))
    }
}

impl Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Value(u64::decode(buf)?))
    }
}

impl Wire for TxId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TxId(u64::decode(buf)?))
    }
}

impl Wire for ClientId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ClientId(u32::decode(buf)?))
    }
}

impl Wire for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ProcessId(u32::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(Some(Key(7)));
        roundtrip(None::<Key>);
        roundtrip(vec![TxId(1), TxId(2)]);
        roundtrip((Key(1), Value(2), 3u64));
        roundtrip(ProcessId(9));
        roundtrip(ClientId(4));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = vec![(Key(1), Value(2)), (Key(3), Value(4))].to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                <Vec<(Key, Value)>>::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn oversize_length_prefix_fails_before_allocating() {
        let mut bytes = Vec::new();
        (u32::MAX).encode(&mut bytes);
        assert!(matches!(
            <Vec<u64>>::from_bytes(&bytes),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_bytes_fail_from_bytes() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_bool_and_option_tags() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(<Option<u8>>::from_bytes(&[9]).is_err());
    }
}
