//! Shared substrate for every protocol implementation: cluster layout,
//! logical clocks, the multi-version storage engine, the uniform protocol
//! interface, and the generic deployment facade with trace-based audits.

pub mod api;
pub mod clock;
pub mod cluster;
pub mod snow;
pub mod store;
pub mod topology;
pub mod wire;

pub use api::{Completed, ProtocolNode, TxError};
pub use snow::SnowDecl;
pub use wire::{Wire, WireError, MAX_SEQ_LEN};

/// Maximum client retry attempts when [`Topology::retry_after`] is set.
/// With exponential doubling the total retry window is
/// `retry_after * (2^MAX_RETRIES - 1)` virtual ns — for a 1 ms base that
/// is ~1.02 s, well inside the harness horizons.
pub const MAX_RETRIES: u32 = 10;

/// Count the per-object multiplicity of carried values: the `V` metric
/// is the maximum number of values a message carries for one object.
pub fn max_values_per_object(keys: impl Iterator<Item = cbf_model::Key>) -> u32 {
    let mut counts: std::collections::HashMap<cbf_model::Key, u32> = Default::default();
    let mut max = 0;
    for k in keys {
        let c = counts.entry(k).or_insert(0);
        *c += 1;
        max = max.max(*c);
    }
    max
}
pub use clock::{HybridClock, LamportClock, TrueTime};
pub use cluster::{audit_rot, count_rounds, Cluster, InFlightTx, RotResult, WtxResult};
pub use store::{MvStore, Version};
pub use topology::Topology;
