//! A multi-version key-value store, the storage engine inside every
//! simulated server.

use cbf_model::{Key, TxId, Value};
use std::collections::HashMap;

/// One stored version of one object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Version {
    /// The written value.
    pub value: Value,
    /// Commit timestamp (protocol-specific clock domain). Versions of a
    /// key are kept sorted ascending by `ts`.
    pub ts: u64,
    /// The writing transaction.
    pub tx: TxId,
}

/// An in-memory multi-version store. Versions are retained forever — the
/// simulator's runs are finite and several protocols (COPS-GT, Eiger)
/// need to serve old versions.
#[derive(Clone, Debug, Default)]
pub struct MvStore {
    data: HashMap<Key, Vec<Version>>,
}

impl MvStore {
    /// An empty store.
    pub fn new() -> Self {
        MvStore::default()
    }

    /// Insert a version, keeping the per-key list sorted by timestamp.
    /// Equal-timestamp inserts keep the newcomer after existing entries
    /// (timestamps are unique in all protocols here, so this is moot).
    pub fn insert(&mut self, key: Key, v: Version) {
        let versions = self.data.entry(key).or_default();
        let pos = versions.partition_point(|x| x.ts <= v.ts);
        versions.insert(pos, v);
    }

    /// The newest version of `key`.
    pub fn latest(&self, key: Key) -> Option<&Version> {
        self.data.get(&key).and_then(|v| v.last())
    }

    /// The newest version with `ts <= bound`.
    pub fn latest_at(&self, key: Key, bound: u64) -> Option<&Version> {
        let versions = self.data.get(&key)?;
        let pos = versions.partition_point(|x| x.ts <= bound);
        pos.checked_sub(1).map(|i| &versions[i])
    }

    /// The newest version satisfying `pred`.
    pub fn latest_matching(&self, key: Key, pred: impl Fn(&Version) -> bool) -> Option<&Version> {
        self.data.get(&key)?.iter().rev().find(|v| pred(v))
    }

    /// The version with exactly this timestamp.
    pub fn at_exact(&self, key: Key, ts: u64) -> Option<&Version> {
        self.data.get(&key)?.iter().find(|v| v.ts == ts)
    }

    /// All versions of `key`, oldest first.
    pub fn versions(&self, key: Key) -> &[Version] {
        self.data.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Number of keys with at least one version.
    pub fn num_keys(&self) -> usize {
        self.data.len()
    }

    /// Total stored versions across all keys.
    pub fn num_versions(&self) -> usize {
        self.data.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(val: u64, ts: u64) -> Version {
        Version {
            value: Value(val),
            ts,
            tx: TxId(ts),
        }
    }

    #[test]
    fn empty_store_returns_nothing() {
        let s = MvStore::new();
        assert!(s.latest(Key(0)).is_none());
        assert!(s.latest_at(Key(0), 100).is_none());
        assert_eq!(s.versions(Key(0)), &[]);
        assert_eq!(s.num_keys(), 0);
    }

    #[test]
    fn versions_stay_sorted_regardless_of_insert_order() {
        let mut s = MvStore::new();
        s.insert(Key(0), v(3, 30));
        s.insert(Key(0), v(1, 10));
        s.insert(Key(0), v(2, 20));
        let ts: Vec<u64> = s.versions(Key(0)).iter().map(|x| x.ts).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(s.latest(Key(0)).unwrap().value, Value(3));
        assert_eq!(s.num_versions(), 3);
    }

    #[test]
    fn latest_at_is_a_floor_lookup() {
        let mut s = MvStore::new();
        s.insert(Key(0), v(1, 10));
        s.insert(Key(0), v(2, 20));
        s.insert(Key(0), v(3, 30));
        assert_eq!(s.latest_at(Key(0), 25).unwrap().value, Value(2));
        assert_eq!(s.latest_at(Key(0), 30).unwrap().value, Value(3));
        assert_eq!(s.latest_at(Key(0), 9), None);
        assert_eq!(s.latest_at(Key(0), u64::MAX).unwrap().value, Value(3));
    }

    #[test]
    fn latest_matching_scans_from_newest() {
        let mut s = MvStore::new();
        s.insert(Key(0), v(1, 10));
        s.insert(Key(0), v(2, 20));
        s.insert(Key(0), v(3, 30));
        let found = s.latest_matching(Key(0), |x| x.ts < 30).unwrap();
        assert_eq!(found.value, Value(2));
        assert!(s.latest_matching(Key(0), |_| false).is_none());
    }

    #[test]
    fn at_exact_finds_only_exact() {
        let mut s = MvStore::new();
        s.insert(Key(1), v(5, 50));
        assert_eq!(s.at_exact(Key(1), 50).unwrap().value, Value(5));
        assert!(s.at_exact(Key(1), 49).is_none());
    }
}
