//! The generic deployment facade: build a world for any protocol, issue
//! transactions, collect the history, and audit the fast-ROT properties
//! **from the trace** — the protocol under test cannot vouch for itself.

use crate::common::api::{Completed, ProtocolNode, TxError};
use crate::common::topology::Topology;
use cbf_model::checker::Verdict;
use cbf_model::history::TxRecord;
use cbf_model::{
    check_causal, ClientId, History, Key, PropertyProfile, RotAudit, TxId, Value, WtxAudit,
};
use cbf_sim::{LatencyModel, ProcessId, SimConfig, Time, Trace, TraceEvent, World, SECONDS};

/// Outcome of one read-only transaction.
#[derive(Clone, Debug)]
pub struct RotResult {
    /// `(key, value)` pairs, in request order.
    pub reads: Vec<(Key, Value)>,
    /// Trace-measured fast-ROT accounting.
    pub audit: RotAudit,
    /// The transaction id assigned.
    pub id: TxId,
}

/// Outcome of one write transaction.
#[derive(Clone, Debug)]
pub struct WtxResult {
    /// The values written, as `(key, value)`.
    pub writes: Vec<(Key, Value)>,
    /// Trace-measured accounting.
    pub audit: WtxAudit,
    /// The transaction id assigned.
    pub id: TxId,
}

/// A running deployment of one protocol: the simulated world plus the
/// bookkeeping (history, audits, id/value allocation) shared by tests,
/// benchmarks and the theorem machinery.
///
/// ```
/// use cbf_protocols::{Cluster, Topology};
/// use cbf_protocols::eiger::EigerNode;
/// use cbf_model::{ClientId, Key};
///
/// let mut db: Cluster<EigerNode> = Cluster::new(Topology::minimal(4));
/// let w = db.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
/// let r = db.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
/// assert_eq!(r.reads[0].1, w.writes[0].1);
/// assert!(db.check().is_ok());      // Definition 1, verified
/// assert!(!r.audit.blocked);        // audited from the trace
/// ```
#[derive(Clone)]
pub struct Cluster<N: ProtocolNode> {
    /// The simulated system. Exposed for adversarial manipulation.
    pub world: World<N>,
    /// The deployment layout.
    pub topo: Topology,
    history: History,
    profile: PropertyProfile,
    next_tx: u64,
    next_val: u64,
    horizon: Time,
}

impl<N: ProtocolNode> Cluster<N> {
    /// Deploy on the default constant-latency network.
    pub fn new(topo: Topology) -> Self {
        Self::with_network(topo, LatencyModel::constant_default(), SimConfig::default())
    }

    /// Deploy with explicit latency model and simulator configuration.
    pub fn with_network(topo: Topology, latency: LatencyModel, config: SimConfig) -> Self {
        let mut actors = Vec::with_capacity(topo.num_processes());
        for s in topo.servers() {
            actors.push(N::server(&topo, s));
        }
        for c in topo.clients() {
            actors.push(N::client(&topo, c));
        }
        let mut world = World::new(actors, latency, config);
        for s in topo.servers() {
            world.set_label(s, format!("p{}", s.0));
        }
        for c in topo.clients() {
            let cid = topo.client_of(c).unwrap();
            world.set_label(c, format!("c{}", cid.0));
        }
        Cluster {
            world,
            topo,
            history: History::new(),
            profile: PropertyProfile::default(),
            next_tx: 0,
            next_val: 1,
            horizon: 60 * SECONDS,
        }
    }

    /// Cap the virtual time one transaction may take before it is
    /// declared [`TxError::Incomplete`].
    pub fn set_horizon(&mut self, horizon: Time) {
        self.horizon = horizon;
    }

    /// Allocate a globally unique value (the checkers require distinct
    /// written values).
    pub fn alloc_value(&mut self) -> Value {
        let v = Value(self.next_val);
        self.next_val += 1;
        v
    }

    /// Allocate a transaction id.
    pub fn alloc_tx(&mut self) -> TxId {
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        id
    }

    /// The history of completed transactions, as the clients saw them.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The aggregated measured properties (one Table 1 row).
    pub fn profile(&self) -> &PropertyProfile {
        &self.profile
    }

    /// Run the causal-consistency checker over everything observed so far.
    pub fn check(&self) -> Verdict {
        check_causal(&self.history)
    }

    /// Fork the entire deployment — configuration, history, audits. The
    /// visibility probes of the theorem machinery run on forks.
    pub fn fork(&self) -> Self {
        Cluster {
            world: self.world.fork(),
            topo: self.topo.clone(),
            history: self.history.clone(),
            profile: self.profile.clone(),
            next_tx: self.next_tx,
            next_val: self.next_val,
            horizon: self.horizon,
        }
    }

    /// Execute a read-only transaction from `client` and wait for it.
    pub fn read_tx(&mut self, client: ClientId, keys: &[Key]) -> Result<RotResult, TxError> {
        let id = self.alloc_tx();
        let pid = self.topo.client_pid(client);
        let mark = self.world.trace.len();
        let invoked_at = self.world.now();
        self.world.inject(pid, N::rot_invoke(id, keys.to_vec()));
        self.world
            .run_until_within(self.horizon, |w| w.actor(pid).completed(id).is_some());
        let done = self
            .world
            .actor_mut(pid)
            .take_completed(id)
            .ok_or(TxError::Incomplete)?;
        let audit = audit_rot::<N>(&self.world.trace, mark, pid, &self.topo, &done);
        self.profile.record_rot(&audit);
        self.history.push(TxRecord {
            id,
            client,
            reads: done.reads.clone(),
            writes: Vec::new(),
            invoked_at,
            completed_at: done.completed_at,
        });
        Ok(RotResult {
            reads: done.reads,
            audit,
            id,
        })
    }

    /// Execute a write-only transaction from `client` with caller-chosen
    /// values and wait for the ack.
    pub fn write_tx(
        &mut self,
        client: ClientId,
        writes: &[(Key, Value)],
    ) -> Result<WtxResult, TxError> {
        let distinct: std::collections::BTreeSet<Key> = writes.iter().map(|(k, _)| *k).collect();
        if distinct.len() > 1 && !N::SUPPORTS_MULTI_WRITE {
            return Err(TxError::MultiWriteUnsupported);
        }
        let id = self.alloc_tx();
        let pid = self.topo.client_pid(client);
        let mark = self.world.trace.len();
        let invoked_at = self.world.now();
        self.world.inject(pid, N::wtx_invoke(id, writes.to_vec()));
        self.world
            .run_until_within(self.horizon, |w| w.actor(pid).completed(id).is_some());
        let done = self
            .world
            .actor_mut(pid)
            .take_completed(id)
            .ok_or(TxError::Incomplete)?;
        let audit = WtxAudit {
            objects: distinct.len() as u32,
            rounds: count_rounds::<N>(&self.world.trace, mark, pid, &self.topo),
            latency: done.completed_at.saturating_sub(invoked_at),
            visibility_latency: 0,
        };
        self.profile.record_wtx(&audit);
        self.history.push(TxRecord {
            id,
            client,
            reads: Vec::new(),
            writes: writes.to_vec(),
            invoked_at,
            completed_at: done.completed_at,
        });
        Ok(WtxResult {
            writes: writes.to_vec(),
            audit,
            id,
        })
    }

    /// Write-only transaction with freshly allocated distinct values.
    pub fn write_tx_auto(&mut self, client: ClientId, keys: &[Key]) -> Result<WtxResult, TxError> {
        let writes: Vec<(Key, Value)> = keys.iter().map(|&k| (k, self.alloc_value())).collect();
        self.write_tx(client, &writes)
    }

    /// Single-object write (supported by every protocol).
    pub fn write(
        &mut self,
        client: ClientId,
        key: Key,
        value: Value,
    ) -> Result<WtxResult, TxError> {
        self.write_tx(client, &[(key, value)])
    }

    // ------------------------------------------------------------------
    // Concurrent (open-loop) driving
    // ------------------------------------------------------------------
    //
    // `read_tx`/`write_tx` run each transaction to completion before the
    // next is injected, so the deployment only ever sees one transaction
    // in flight — fine for the property audits, useless for measuring
    // contention. The `begin_*`/`finish_tx` triple splits invocation
    // from harvest: a driver begins a whole epoch of transactions (one
    // per issuing client at most — protocol client actors hold one
    // outstanding op), runs the world until all complete, then finishes
    // each. Trace-suffix audits are skipped under concurrency (the
    // suffix interleaves every open transaction); message costs come
    // from world-level counters instead.

    /// Invoke a read-only transaction without running the world.
    pub fn begin_read_tx(&mut self, client: ClientId, keys: &[Key]) -> InFlightTx {
        let id = self.alloc_tx();
        let pid = self.topo.client_pid(client);
        let invoked_at = self.world.now();
        self.world.inject(pid, N::rot_invoke(id, keys.to_vec()));
        InFlightTx {
            id,
            client,
            pid,
            invoked_at,
            writes: Vec::new(),
        }
    }

    /// Invoke a write transaction without running the world. Fresh
    /// distinct values are allocated for the keys.
    pub fn begin_write_tx(
        &mut self,
        client: ClientId,
        keys: &[Key],
    ) -> Result<InFlightTx, TxError> {
        let distinct: std::collections::BTreeSet<Key> = keys.iter().copied().collect();
        if distinct.len() > 1 && !N::SUPPORTS_MULTI_WRITE {
            return Err(TxError::MultiWriteUnsupported);
        }
        let writes: Vec<(Key, Value)> = distinct
            .into_iter()
            .map(|k| (k, self.alloc_value()))
            .collect();
        let id = self.alloc_tx();
        let pid = self.topo.client_pid(client);
        let invoked_at = self.world.now();
        self.world.inject(pid, N::wtx_invoke(id, writes.clone()));
        Ok(InFlightTx {
            id,
            client,
            pid,
            invoked_at,
            writes,
        })
    }

    /// Run the world until every open transaction has completed (or the
    /// horizon passes). Returns true when all completed.
    pub fn run_open(&mut self, open: &[InFlightTx]) -> bool {
        let outcome = self.world.run_until_within(self.horizon, |w| {
            open.iter()
                .all(|t| w.actor(t.pid).completed(t.id).is_some())
        });
        outcome.is_settled()
    }

    /// Harvest one begun transaction: record it in the history and
    /// return its measured latency (virtual ns).
    pub fn finish_tx(&mut self, t: InFlightTx) -> Result<Time, TxError> {
        let done = self
            .world
            .actor_mut(t.pid)
            .take_completed(t.id)
            .ok_or(TxError::Incomplete)?;
        let latency = done.completed_at.saturating_sub(t.invoked_at);
        self.history.push(TxRecord {
            id: t.id,
            client: t.client,
            reads: done.reads,
            writes: t.writes,
            invoked_at: t.invoked_at,
            completed_at: done.completed_at,
        });
        Ok(latency)
    }
}

/// A transaction invoked via [`Cluster::begin_read_tx`] /
/// [`Cluster::begin_write_tx`] but not yet harvested with
/// [`Cluster::finish_tx`].
#[derive(Clone, Debug)]
pub struct InFlightTx {
    /// The assigned transaction id.
    pub id: TxId,
    /// The issuing client.
    pub client: ClientId,
    /// The client's simulated process.
    pub pid: ProcessId,
    /// Virtual time of invocation.
    pub invoked_at: Time,
    /// The writes (empty for a read-only transaction).
    pub writes: Vec<(Key, Value)>,
}

/// Count client→server communication rounds since `mark`: the number of
/// distinct client computation steps that emitted at least one
/// transactional request.
pub fn count_rounds<N: ProtocolNode>(
    trace: &Trace<N::Msg>,
    mark: usize,
    client: ProcessId,
    topo: &Topology,
) -> u32 {
    let mut rounds = 0u32;
    let mut last_client_step: Option<usize> = None;
    let mut counted_step: Option<usize> = None;
    for (i, ev) in trace.since(mark).iter().enumerate() {
        match ev {
            TraceEvent::Step { pid, .. } if *pid == client => last_client_step = Some(i),
            TraceEvent::Send { from, to, msg, .. }
                if *from == client
                    && topo.is_server(*to)
                    && N::msg_is_request(msg)
                    && last_client_step.is_some()
                    && counted_step != last_client_step =>
            {
                rounds += 1;
                counted_step = last_client_step;
            }
            _ => {}
        }
    }
    rounds
}

/// Audit one read-only transaction from the trace suffix: rounds, server
/// messages, values per message, and server-side blocking.
pub fn audit_rot<N: ProtocolNode>(
    trace: &Trace<N::Msg>,
    mark: usize,
    client: ProcessId,
    topo: &Topology,
    done: &Completed,
) -> RotAudit {
    let events = trace.since(mark);
    let rounds = count_rounds::<N>(trace, mark, client, topo);

    let mut server_msgs = 0u32;
    let mut max_values = 0u32;
    for ev in &events {
        if let TraceEvent::Send { from, to, msg, .. } = ev {
            if topo.is_server(*from) && *to == client {
                server_msgs += 1;
                max_values = max_values.max(N::msg_values(msg));
            }
        }
    }

    RotAudit {
        rounds,
        server_msgs,
        max_values_per_msg: max_values,
        blocked: detect_blocking::<N>(&events, client, topo),
        latency: done.completed_at.saturating_sub(done.invoked_at),
    }
}

/// Non-blocking (Definition 4): each server must respond within the
/// computation step that first consumed the client's request. Detected
/// structurally: for every delivered request, find the server's next
/// step; if that step's contiguous sends do not include a message to the
/// client but a later one does, the server deferred — it blocked.
fn detect_blocking<N: ProtocolNode>(
    events: &[TraceEvent<N::Msg>],
    client: ProcessId,
    topo: &Topology,
) -> bool {
    // Ids of this client's request messages.
    let request_ids: std::collections::HashSet<cbf_sim::MsgId> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Send {
                id, from, to, msg, ..
            } if *from == client && topo.is_server(*to) && N::msg_is_request(msg) => Some(*id),
            _ => None,
        })
        .collect();

    for (i, ev) in events.iter().enumerate() {
        let TraceEvent::Deliver { id, to: server, .. } = ev else {
            continue;
        };
        if !request_ids.contains(id) {
            continue;
        }
        // First step of this server after the delivery.
        let Some(step_idx) = events[i + 1..]
            .iter()
            .position(|e| matches!(e, TraceEvent::Step { pid, .. } if pid == server))
            .map(|off| i + 1 + off)
        else {
            continue; // never stepped again: request unserved, not "blocking"
        };
        // Sends are recorded contiguously after their step.
        let mut responded_in_step = false;
        for e in &events[step_idx + 1..] {
            match e {
                TraceEvent::Send { from, to, .. } if from == server => {
                    if *to == client {
                        responded_in_step = true;
                    }
                }
                _ => break,
            }
        }
        if responded_in_step {
            continue;
        }
        // Any later message to the client means the response was deferred.
        let responded_later = events[step_idx + 1..].iter().any(
            |e| matches!(e, TraceEvent::Send { from, to, .. } if from == server && *to == client),
        );
        if responded_later {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::api::Completed;
    use cbf_sim::{Actor, Ctx};

    /// A scripted protocol for auditing the auditor: reads take
    /// `ROUNDS` client rounds, and servers defer their response by one
    /// step when `DEFER` is set.
    #[derive(Clone)]
    enum Scripted<const ROUNDS: u8, const DEFER: bool> {
        Client {
            topo: Topology,
            round: u8,
            pending: Option<(TxId, Vec<Key>)>,
            completed: Vec<Completed>,
        },
        Server {
            /// A deferred request waiting for the next step.
            parked: Option<(cbf_sim::ProcessId, TxId)>,
        },
    }

    #[derive(Clone, Debug)]
    enum SMsg {
        Invoke { id: TxId, keys: Vec<Key> },
        Req { id: TxId, round: u8 },
        Resp { id: TxId, round: u8 },
        Kick,
    }

    impl<const ROUNDS: u8, const DEFER: bool> Actor for Scripted<ROUNDS, DEFER> {
        type Msg = SMsg;
        fn step(&mut self, ctx: &mut Ctx<SMsg>) {
            for env in ctx.recv() {
                match (&mut *self, env.msg) {
                    (
                        Scripted::Client {
                            topo,
                            round,
                            pending,
                            ..
                        },
                        SMsg::Invoke { id, keys },
                    ) => {
                        *round = 1;
                        *pending = Some((id, keys));
                        for s in topo.servers() {
                            ctx.send(s, SMsg::Req { id, round: 1 });
                        }
                    }
                    (
                        Scripted::Client {
                            topo,
                            round,
                            pending,
                            completed,
                        },
                        SMsg::Resp { id, round: r },
                        // One response per round suffices (single-server
                        // bookkeeping kept trivial on purpose).
                    ) if r == *round && topo.num_servers == 1 => {
                        if *round < ROUNDS {
                            *round += 1;
                            let rr = *round;
                            for s in topo.servers() {
                                ctx.send(s, SMsg::Req { id, round: rr });
                            }
                        } else if let Some((pid, keys)) = pending.take() {
                            completed.push(Completed {
                                id: pid,
                                reads: keys.iter().map(|&k| (k, Value(1))).collect(),
                                invoked_at: 0,
                                completed_at: ctx.now(),
                            });
                        }
                    }
                    (Scripted::Server { parked }, SMsg::Req { id, round }) => {
                        if DEFER {
                            *parked = Some((env.from, id));
                            // Wake ourselves with a self-message so the
                            // response goes out in a LATER step.
                            ctx.set_timer(1, SMsg::Kick);
                            let _ = round;
                        } else {
                            ctx.send(env.from, SMsg::Resp { id, round });
                        }
                    }
                    (Scripted::Server { parked }, SMsg::Kick) => {
                        if let Some((client, id)) = parked.take() {
                            ctx.send(client, SMsg::Resp { id, round: ROUNDS });
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    impl<const ROUNDS: u8, const DEFER: bool> ProtocolNode for Scripted<ROUNDS, DEFER> {
        const NAME: &'static str = "scripted";
        const CONSISTENCY: cbf_model::ConsistencyLevel = cbf_model::ConsistencyLevel::None;
        const SUPPORTS_MULTI_WRITE: bool = false;

        fn server(_topo: &Topology, _id: ProcessId) -> Self {
            Scripted::Server { parked: None }
        }
        fn client(topo: &Topology, _id: ProcessId) -> Self {
            Scripted::Client {
                topo: topo.clone(),
                round: 0,
                pending: None,
                completed: Vec::new(),
            }
        }
        fn rot_invoke(id: TxId, keys: Vec<Key>) -> SMsg {
            SMsg::Invoke { id, keys }
        }
        fn wtx_invoke(_id: TxId, _writes: Vec<(Key, Value)>) -> SMsg {
            SMsg::Kick
        }
        fn completed(&self, id: TxId) -> Option<&Completed> {
            match self {
                Scripted::Client { completed, .. } => completed.iter().find(|c| c.id == id),
                _ => None,
            }
        }
        fn take_completed(&mut self, id: TxId) -> Option<Completed> {
            match self {
                Scripted::Client { completed, .. } => {
                    let i = completed.iter().position(|c| c.id == id)?;
                    Some(completed.remove(i))
                }
                _ => None,
            }
        }
        fn msg_values(msg: &SMsg) -> u32 {
            match msg {
                SMsg::Resp { .. } => 1,
                _ => 0,
            }
        }
        fn msg_is_request(msg: &SMsg) -> bool {
            matches!(msg, SMsg::Req { .. })
        }
    }

    fn one_server_topo() -> Topology {
        // A single server keeps the scripted round bookkeeping simple.
        let mut t = Topology::minimal(2);
        t.num_servers = 1;
        t.num_keys = 1;
        t
    }

    #[test]
    fn auditor_counts_rounds_exactly() {
        fn rounds_of<const R: u8>() -> u32 {
            let mut c: Cluster<Scripted<R, false>> = Cluster::new(one_server_topo());
            let r = c.read_tx(cbf_model::ClientId(0), &[Key(0)]).unwrap();
            assert!(
                !r.audit.blocked,
                "non-deferring script must audit nonblocking"
            );
            r.audit.rounds
        }
        assert_eq!(rounds_of::<1>(), 1);
        assert_eq!(rounds_of::<2>(), 2);
        assert_eq!(rounds_of::<3>(), 3);
    }

    #[test]
    fn auditor_detects_deferred_responses() {
        let mut c: Cluster<Scripted<1, true>> = Cluster::new(one_server_topo());
        let r = c.read_tx(cbf_model::ClientId(0), &[Key(0)]).unwrap();
        assert!(
            r.audit.blocked,
            "deferring script must audit as blocking: {:?}",
            r.audit
        );
        assert_eq!(r.audit.rounds, 1);
    }

    #[test]
    fn auditor_reports_one_value_messages() {
        let mut c: Cluster<Scripted<1, false>> = Cluster::new(one_server_topo());
        let r = c.read_tx(cbf_model::ClientId(0), &[Key(0)]).unwrap();
        assert_eq!(r.audit.max_values_per_msg, 1);
        assert_eq!(r.audit.server_msgs, 1);
        assert!(r.audit.is_fast());
    }
}
