//! Calvin [Thomson et al., SIGMOD 2012]: deterministic transaction
//! sequencing — strict serializability **without two-phase commit**.
//!
//! Table 1 row: R = 2, V = 1, blocking, W, strict serializability.
//!
//! Calvin's architecture is genuinely different from everything else in
//! this workspace: a **sequencer** assigns every transaction (reads
//! included) a global sequence number, and every server executes the
//! transactions that touch its shard **in sequence order**. Agreement on
//! the order replaces commit-time coordination; the price is that a
//! server cannot answer a read until execution has reached the read's
//! slot — if an earlier transaction's input has not arrived, the read
//! **blocks** behind it (Table 1's N = no).
//!
//! Faithful-in-the-properties simplifications (per DESIGN.md): a single
//! sequencer server (server 0) stands in for Calvin's replicated
//! sequencing layer, and transactions carry their inputs in the
//! dispatch, so multi-shard writes apply independently — atomicity
//! falls out of determinism, exactly as in Calvin.

use crate::common::{Completed, ProtocolNode, Topology};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId};
use std::collections::HashMap;

/// Calvin message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: write-only transaction.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Client → sequencer: order this transaction (round 1).
    SeqReq {
        id: TxId,
        reads: Vec<Key>,
        writes: Vec<(Key, Value)>,
    },
    /// Sequencer → client: your global slot.
    SeqResp { id: TxId, slot: u64 },
    /// Sequencer → server: the transaction at `slot` (only the parts
    /// touching that server's shard).
    Dispatch {
        id: TxId,
        slot: u64,
        reads: Vec<Key>,
        writes: Vec<(Key, Value)>,
        client: ProcessId,
    },
    /// Server → client: this shard's read results for the slot (round 2's
    /// response; empty `reads` for pure writes doubles as the ack).
    ShardResp { id: TxId, reads: Vec<(Key, Value)> },
}

/// In-flight transaction at the client.
#[derive(Clone, Debug)]
struct Pending {
    keys: Vec<Key>,
    got: HashMap<Key, Value>,
    awaiting: usize,
    is_read: bool,
    invoked_at: u64,
}

/// Calvin client.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    pending: HashMap<TxId, Pending>,
    completed: HashMap<TxId, Completed>,
}

/// A dispatched transaction waiting in a server's input queue.
#[derive(Clone, Debug)]
struct QueuedTx {
    id: TxId,
    reads: Vec<Key>,
    writes: Vec<(Key, Value)>,
    client: ProcessId,
}

/// Calvin server: shard store + in-order execution queue; server 0 also
/// runs the sequencer.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    me: ProcessId,
    store: HashMap<Key, Value>,
    /// Dispatched-but-not-yet-executed transactions, keyed by slot.
    queue: HashMap<u64, QueuedTx>,
    /// The next slot this server will execute.
    next_slot: u64,
    /// Sequencer only: the next slot to hand out.
    seq_counter: u64,
    /// Sequencer only: slots relevant to each server (so followers know
    /// which slots to skip). Simplification: every slot is dispatched to
    /// every involved server, and servers are told about every slot —
    /// uninvolved ones receive an empty dispatch.
    _reserved: (),
}

/// A Calvin node.
#[derive(Clone, Debug)]
pub enum CalvinNode {
    /// A client.
    Client(ClientState),
    /// A server (server 0 doubles as the sequencer).
    Server(ServerState),
}

const SEQUENCER: ProcessId = ProcessId(0);

impl CalvinNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    ctx.send(
                        SEQUENCER,
                        Msg::SeqReq {
                            id,
                            reads: keys.clone(),
                            writes: Vec::new(),
                        },
                    );
                    let awaiting = c.topo.group_by_primary(&keys).len();
                    c.pending.insert(
                        id,
                        Pending {
                            keys,
                            got: HashMap::new(),
                            awaiting,
                            is_read: true,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::InvokeWtx { id, writes } => {
                    let keys: Vec<Key> = writes.iter().map(|&(k, _)| k).collect();
                    let awaiting = c.topo.group_by_primary(&keys).len();
                    ctx.send(
                        SEQUENCER,
                        Msg::SeqReq {
                            id,
                            reads: Vec::new(),
                            writes,
                        },
                    );
                    c.pending.insert(
                        id,
                        Pending {
                            keys,
                            got: HashMap::new(),
                            awaiting,
                            is_read: false,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::SeqResp { .. } => {
                    // Round 1 complete; the dispatches are on their way to
                    // the shards. Nothing to do but wait for round 2.
                }
                Msg::ShardResp { id, reads } => {
                    let now = ctx.now();
                    if let Some(p) = c.pending.get_mut(&id) {
                        for (k, v) in reads {
                            p.got.insert(k, v);
                        }
                        p.awaiting -= 1;
                        if p.awaiting == 0 {
                            let Some(p) = c.pending.remove(&id) else {
                                continue;
                            };
                            let reads = if p.is_read {
                                p.keys
                                    .iter()
                                    .map(|&k| (k, p.got.get(&k).copied().unwrap_or(Value::BOTTOM)))
                                    .collect()
                            } else {
                                Vec::new()
                            };
                            c.completed.insert(
                                id,
                                Completed {
                                    id,
                                    reads,
                                    invoked_at: p.invoked_at,
                                    completed_at: now,
                                },
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::SeqReq { id, reads, writes } => {
                    debug_assert_eq!(s.me, SEQUENCER, "only the sequencer orders");
                    let slot = s.seq_counter;
                    s.seq_counter += 1;
                    ctx.send(env.from, Msg::SeqResp { id, slot });
                    // Dispatch the slot to EVERY server: involved servers
                    // get their shard's piece, the rest an empty marker
                    // (so their execution cursor can advance).
                    for srv in s.topo.servers() {
                        let shard_reads: Vec<Key> = reads
                            .iter()
                            .copied()
                            .filter(|&k| s.topo.primary(k) == srv)
                            .collect();
                        let shard_writes: Vec<(Key, Value)> = writes
                            .iter()
                            .copied()
                            .filter(|&(k, _)| s.topo.primary(k) == srv)
                            .collect();
                        ctx.send(
                            srv,
                            Msg::Dispatch {
                                id,
                                slot,
                                reads: shard_reads,
                                writes: shard_writes,
                                client: env.from,
                            },
                        );
                    }
                }
                Msg::Dispatch {
                    id,
                    slot,
                    reads,
                    writes,
                    client,
                } => {
                    s.queue.insert(
                        slot,
                        QueuedTx {
                            id,
                            reads,
                            writes,
                            client,
                        },
                    );
                    Self::execute_ready(s, ctx);
                }
                _ => {}
            }
        }
    }

    /// Execute queued transactions strictly in slot order; stop at the
    /// first gap — that wait is Calvin's blocking.
    fn execute_ready(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        while let Some(tx) = s.queue.remove(&s.next_slot) {
            s.next_slot += 1;
            let involved = !tx.reads.is_empty() || !tx.writes.is_empty();
            for (k, v) in &tx.writes {
                s.store.insert(*k, *v);
            }
            if involved {
                let reads: Vec<(Key, Value)> = tx
                    .reads
                    .iter()
                    .map(|k| (*k, s.store.get(k).copied().unwrap_or(Value::BOTTOM)))
                    .collect();
                ctx.send(tx.client, Msg::ShardResp { id: tx.id, reads });
            }
        }
    }
}

impl Actor for CalvinNode {
    type Msg = Msg;
    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            CalvinNode::Client(c) => Self::client_step(c, ctx),
            CalvinNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for CalvinNode {
    const NAME: &'static str = "Calvin";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::StrictSerializable;
    const SUPPORTS_MULTI_WRITE: bool = true;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        CalvinNode::Server(ServerState {
            topo: topo.clone(),
            me: id,
            store: HashMap::new(),
            queue: HashMap::new(),
            next_slot: 0,
            seq_counter: 0,
            _reserved: (),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        CalvinNode::Client(ClientState {
            topo: topo.clone(),
            pending: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            CalvinNode::Client(c) => c.completed.get(&id),
            CalvinNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            CalvinNode::Client(c) => c.completed.remove(&id),
            CalvinNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ShardResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v)| !v.is_bottom())
                    .map(|&(k, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(msg, Msg::SeqReq { .. })
    }
}

crate::snow_properties! {
    system: "Calvin",
    consistency: StrictSerializable,
    rounds: 2,
    values: 1,
    nonblocking: false,
    write_tx: true,
    requests: [SeqReq],
    value_replies: [ShardResp],
    paper_row: "Calvin",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::{check_causal, check_read_atomicity, ClientId};

    fn minimal() -> Cluster<CalvinNode> {
        Cluster::new(Topology::minimal(4))
    }

    #[test]
    fn sequenced_write_then_read() {
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1);
        assert_eq!(r.reads[1].1, w.writes[1].1);
        assert!(c.check().is_ok());
    }

    #[test]
    fn reads_are_two_rounds_through_the_sequencer() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        // Round 1 = sequencer request; round 2 responses come from the
        // shards via the dispatch, so the audit sees a single client
        // round but multi-hop latency. Calvin's paper counts 2 rounds
        // (client→sequencer→shards→client); the audit's client-step
        // metric sees 1 send step plus the sequencer path in latency.
        assert_eq!(r.audit.rounds, 1, "{:?}", r.audit);
        // Latency: client→seq (50µs) + seq→shard (50µs) + shard→client
        // (50µs) = 150 µs ≥ the 2-hop (100 µs) fast-read floor.
        assert!(r.audit.latency >= 150 * cbf_sim::MICROS, "{:?}", r.audit);
        assert!(r.audit.max_values_per_msg <= 1);
    }

    #[test]
    fn execution_blocks_behind_sequence_gaps() {
        // Freeze the dispatch of an earlier write to p1; a later read's
        // slot cannot execute there until the gap fills — blocking.
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap();
        // Freeze sequencer→p1 (dispatches). The sequencer is p0.
        c.world.hold(ProcessId(0), ProcessId(1));
        // A write gets slot n but p1 never hears of it...
        let wpid = c.topo.client_pid(ClientId(0));
        let id = c.alloc_tx();
        let (v0, v1) = (c.alloc_value(), c.alloc_value());
        c.world.inject(
            wpid,
            Msg::InvokeWtx {
                id,
                writes: vec![(Key(0), v0), (Key(1), v1)],
            },
        );
        c.world.run_for(cbf_sim::MILLIS);
        // ...so a subsequent read of X1 parks behind the gap until the
        // link heals.
        let rpid = c.topo.client_pid(ClientId(1));
        let rot = c.alloc_tx();
        c.world.inject(
            rpid,
            Msg::InvokeRot {
                id: rot,
                keys: vec![Key(0), Key(1)],
            },
        );
        c.world.run_for(5 * cbf_sim::MILLIS);
        assert!(
            c.world.actor(rpid).completed(rot).is_none(),
            "the read must be stuck behind the sequence gap"
        );
        c.world.release(ProcessId(0), ProcessId(1));
        c.world
            .run_until_within(cbf_sim::SECONDS, |w| w.actor(rpid).completed(rot).is_some());
        let done = c.world.actor_mut(rpid).take_completed(rot).unwrap();
        // Deterministic execution: the read sees the full write.
        assert_eq!(done.reads, vec![(Key(0), v0), (Key(1), v1)]);
    }

    #[test]
    fn determinism_gives_atomicity_without_2pc() {
        for seed in 0..5u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 2 == 0 {
                    c.write_tx_auto(cl, &[Key(0), Key(1)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
            }
            c.world.run_chaotic(seed, 200_000);
            assert!(check_causal(c.history()).is_ok(), "seed {seed}");
            assert!(check_read_atomicity(c.history()).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn profile_matches_the_table_row() {
        let mut c = minimal();
        for i in 0..8u32 {
            c.write_tx_auto(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
            c.read_tx(ClientId((i + 1) % 4), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.multi_write_supported);
        assert!(p.max_values <= 1);
        assert!(c.check().is_ok());
    }
}
