//! Contrarian [Didona et al., VLDB 2018]: latency-optimal **non-blocking**
//! two-round causally consistent ROTs, without write transactions.
//!
//! Table 1 row: R = 2, V = 1, non-blocking, no W, causal consistency.
//!
//! Contrarian is the paper's companion-work data point: even giving up
//! multi-object write transactions, a *non-blocking* causal ROT costs
//! two rounds unless you pay COPS-SNOW's write-side price (that is the
//! lower-bound result of the companion paper). The implementation is the stabilization
//! pattern specialized to single-key writes:
//!
//! * servers tick hybrid clocks, broadcast their local stable time on a
//!   timer, and maintain the global stable snapshot (GSS = min heard);
//!   with single-key apply-on-arrival writes there are never pending
//!   transactions, so LST is just the clock;
//! * a ROT asks one server for the GSS (round 1), then reads every key
//!   at that snapshot (round 2) — sealed past, so servers answer
//!   immediately with one value;
//! * clients cache their own recent writes for read-your-writes and keep
//!   a snapshot floor for monotonic reads.

use crate::common::{Completed, HybridClock, MvStore, ProtocolNode, Topology, Version};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId, Time, MICROS};
use std::collections::HashMap;

/// Stabilization broadcast period.
pub const STABLE_PERIOD: Time = 100 * MICROS;

/// Contrarian message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: (single-object) write.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Timer: broadcast my stable time.
    StableTick,
    /// Server → server: my local stable time.
    LstBcast { lst: u64 },
    /// Client → any server: current GSS?
    GssReq { id: TxId },
    /// Server → client: the GSS.
    GssResp { id: TxId, gss: u64 },
    /// Client → server: read keys at snapshot `at`.
    ReadAt { id: TxId, keys: Vec<Key>, at: u64 },
    /// Server → client: one value per key.
    ReadAtResp {
        id: TxId,
        reads: Vec<(Key, Value, u64)>,
    },
    /// Client → server: single-key write.
    PutReq {
        id: TxId,
        key: Key,
        value: Value,
        dep_ts: u64,
    },
    /// Server → client: applied at `ts`.
    PutAck { id: TxId, key: Key, ts: u64 },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    snapshot: u64,
    got: HashMap<Key, (Value, u64)>,
    awaiting: usize,
    invoked_at: u64,
}

/// Contrarian client.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Own unstabilized writes: key → (value, ts).
    cache: HashMap<Key, (Value, u64)>,
    dep_ts: u64,
    last_snapshot: u64,
    rots: HashMap<TxId, PendingRot>,
    /// In-flight single-key writes: id → (value, invoked_at).
    puts: HashMap<TxId, (Value, u64)>,
    completed: HashMap<TxId, Completed>,
}

/// Contrarian server.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    clock: HybridClock,
    known_lst: Vec<u64>,
    me: ProcessId,
    /// Stabilization broadcast period (tunable via `Topology::tuning`).
    period: cbf_sim::Time,
}

impl ServerState {
    fn gss(&self) -> u64 {
        self.known_lst.iter().copied().min().unwrap_or(0)
    }

    fn refresh_own_lst(&mut self, now: Time) -> u64 {
        let lst = self.clock.tick(now);
        let my = self.me.index();
        self.known_lst[my] = self.known_lst[my].max(lst);
        lst
    }
}

/// A Contrarian node.
#[derive(Clone, Debug)]
pub enum ContrarianNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl ContrarianNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let server = c.topo.primary(keys[0]);
                    ctx.send(server, Msg::GssReq { id });
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            snapshot: 0,
                            got: HashMap::new(),
                            awaiting: 0,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::GssResp { id, gss } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    let at = gss.max(c.last_snapshot);
                    c.last_snapshot = at;
                    p.snapshot = at;
                    let groups = c.topo.group_by_primary(&p.keys);
                    p.awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::ReadAt { id, keys: ks, at });
                    }
                }
                Msg::ReadAtResp { id, reads } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    for (k, v, ts) in reads {
                        p.got.insert(k, (v, ts));
                    }
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        let Some(p) = c.rots.remove(&id) else {
                            continue;
                        };
                        let mut out = Vec::with_capacity(p.keys.len());
                        for &k in &p.keys {
                            let (mut v, ts) = p.got.get(&k).copied().unwrap_or((Value::BOTTOM, 0));
                            if let Some(&(cv, cts)) = c.cache.get(&k) {
                                if cts > ts {
                                    v = cv;
                                }
                            }
                            out.push((k, v));
                        }
                        let snap = p.snapshot;
                        c.cache.retain(|_, &mut (_, ts)| ts > snap);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: out,
                                invoked_at: p.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let (key, value) = writes[0];
                    ctx.send(
                        c.topo.primary(key),
                        Msg::PutReq {
                            id,
                            key,
                            value,
                            dep_ts: c.dep_ts,
                        },
                    );
                    c.puts.insert(id, (value, ctx.now()));
                }
                Msg::PutAck { id, key, ts } => {
                    if let Some((value, invoked_at)) = c.puts.remove(&id) {
                        c.dep_ts = c.dep_ts.max(ts);
                        // Cache the write for read-your-writes until the
                        // snapshot catches up to it.
                        c.cache.insert(key, (value, ts));
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::StableTick => {
                    let lst = s.refresh_own_lst(ctx.now());
                    for srv in s.topo.servers() {
                        if srv != s.me {
                            ctx.send(srv, Msg::LstBcast { lst });
                        }
                    }
                    ctx.set_timer(s.period, Msg::StableTick);
                }
                Msg::LstBcast { lst } => {
                    let idx = env.from.index();
                    s.known_lst[idx] = s.known_lst[idx].max(lst);
                }
                Msg::GssReq { id } => {
                    s.refresh_own_lst(ctx.now());
                    ctx.send(env.from, Msg::GssResp { id, gss: s.gss() });
                }
                Msg::ReadAt { id, keys, at } => {
                    let reads: Vec<(Key, Value, u64)> = keys
                        .iter()
                        .map(|&k| match s.store.latest_at(k, at) {
                            Some(v) => (k, v.value, v.ts),
                            None => (k, Value::BOTTOM, 0),
                        })
                        .collect();
                    ctx.send(env.from, Msg::ReadAtResp { id, reads });
                }
                Msg::PutReq {
                    id,
                    key,
                    value,
                    dep_ts,
                } => {
                    s.clock.witness(dep_ts);
                    let ts = s.clock.tick(ctx.now());
                    s.store.insert(key, Version { value, ts, tx: id });
                    ctx.send(env.from, Msg::PutAck { id, key, ts });
                }
                _ => {}
            }
        }
    }
}

impl Actor for ContrarianNode {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        if let ContrarianNode::Server(s) = self {
            ctx.set_timer(s.period, Msg::StableTick);
        }
    }

    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            ContrarianNode::Client(c) => Self::client_step(c, ctx),
            ContrarianNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for ContrarianNode {
    const NAME: &'static str = "Contrarian";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        ContrarianNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            clock: HybridClock::new(id.0 as u8),
            known_lst: vec![0; topo.num_servers as usize],
            me: id,
            period: if topo.tuning > 0 {
                topo.tuning
            } else {
                STABLE_PERIOD
            },
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        ContrarianNode::Client(ClientState {
            topo: topo.clone(),
            cache: HashMap::new(),
            dep_ts: 0,
            last_snapshot: 0,
            rots: HashMap::new(),
            puts: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            ContrarianNode::Client(c) => c.completed.get(&id),
            ContrarianNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            ContrarianNode::Client(c) => c.completed.remove(&id),
            ContrarianNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadAtResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::GssReq { .. } | Msg::ReadAt { .. } | Msg::PutReq { .. }
        )
    }
}

crate::snow_properties! {
    system: "Contrarian",
    consistency: Causal,
    rounds: 2,
    values: 1,
    nonblocking: true,
    write_tx: false,
    requests: [GssReq, ReadAt, PutReq],
    value_replies: [ReadAtResp],
    paper_row: "Contrarian",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Cluster, TxError};
    use cbf_model::ClientId;

    fn minimal() -> Cluster<ContrarianNode> {
        Cluster::new(Topology::minimal(4))
    }

    fn stabilize(c: &mut Cluster<ContrarianNode>) {
        c.world.run_for(5 * STABLE_PERIOD);
    }

    #[test]
    fn two_round_nonblocking_reads() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0)]).unwrap();
        c.write_tx_auto(ClientId(0), &[Key(1)]).unwrap();
        stabilize(&mut c);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.audit.rounds, 2, "audit: {:?}", r.audit);
        assert!(r.audit.max_values_per_msg <= 1);
        assert!(!r.audit.blocked);
        assert!(c.check().is_ok());
    }

    #[test]
    fn multi_write_is_rejected() {
        let mut c = minimal();
        let err = c.write_tx_auto(ClientId(0), &[Key(0), Key(1)]).unwrap_err();
        assert_eq!(err, TxError::MultiWriteUnsupported);
    }

    #[test]
    fn snapshot_reads_are_causal_under_races() {
        // The dependency race that forces COPS into round 2 and breaks
        // naive-fast: Contrarian's sealed snapshot just returns the old
        // world consistently.
        let mut c = minimal();
        let v0_old = c.alloc_value();
        let v1_old = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), v0_old)]).unwrap();
        c.write_tx(ClientId(0), &[(Key(1), v1_old)]).unwrap();
        stabilize(&mut c);

        let rpid = c.topo.client_pid(ClientId(1));
        c.world.hold_pair(rpid, ProcessId(1));
        let rot = c.alloc_tx();
        c.world.inject(
            rpid,
            Msg::InvokeRot {
                id: rot,
                keys: vec![Key(0), Key(1)],
            },
        );
        c.world.run_for(cbf_sim::MILLIS);

        let v0_new = c.alloc_value();
        let v1_new = c.alloc_value();
        c.write_tx(ClientId(0), &[(Key(0), v0_new)]).unwrap();
        c.write_tx(ClientId(0), &[(Key(1), v1_new)]).unwrap();
        stabilize(&mut c);

        c.world.release_pair(rpid, ProcessId(1));
        c.world
            .run_until_within(cbf_sim::SECONDS, |w| w.actor(rpid).completed(rot).is_some());
        let done = c.world.actor_mut(rpid).take_completed(rot).unwrap();
        assert_eq!(done.reads, vec![(Key(0), v0_old), (Key(1), v1_old)]);
    }

    #[test]
    fn chaotic_schedules_stay_causal() {
        for seed in 0..5u64 {
            let mut c = minimal();
            for i in 0..12u32 {
                let cl = ClientId(i % 4);
                if i % 3 == 0 {
                    c.write_tx_auto(cl, &[Key(i % 2)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
                if i % 4 == 0 {
                    c.world.run_for(STABLE_PERIOD);
                }
            }
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
        }
    }
}
