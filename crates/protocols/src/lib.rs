//! # cbf-protocols — the design space of §3.4 and Table 1
//!
//! Implementations of distributed transactional KV protocols on the
//! `cbf-sim` substrate, all speaking the same [`ProtocolNode`] interface
//! so the auditor and the theorem machinery can drive any of them.
//!
//! | module | models | properties |
//! |---|---|---|
//! | [`naive`] | impossible claimants | claim N+R+V+W (the theorem breaks them) |
//! | [`cops`] | COPS-GT | N, R≤2, V, no W |
//! | [`cops_snow`] | COPS-SNOW | **fast ROTs** (N+R+V), no W |
//! | [`eiger`] | Eiger | N, R≤3, V≤2, W |
//! | [`wren`] | Wren | N, R=2, V, W |
//! | [`cops_rw`] | §3.4 N+R+W sketch | N, R=1, V≫1, W |
//! | [`spanner`] | Spanner | R=1, V, W, blocking |
//! | [`contrarian`] | Contrarian | N, R=2, V, no W |
//! | [`gentlerain`] | GentleRain | R=2, V, no W, blocking |
//! | [`ramp`] | RAMP | N, R≤2, W — read atomicity, *not* causal |
//! | [`pinned`] | SwiftCloud/Eiger-PS (†) | fast + W + causal — but no minimal progress |
//! | [`occult`] | Occult | N, R≥1 (client retries), W — per-client PSI |
//! | [`cure`] | Cure | R=2, V, W, blocking |
//! | [`calvin`] | Calvin | sequencer-ordered, W, blocking, strict-ser — no 2PC |

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calvin;
pub mod common;
pub mod contrarian;
pub mod cops;
pub mod cops_rw;
pub mod cops_snow;
pub mod cure;
pub mod eiger;
pub mod gentlerain;
pub mod naive;
pub mod occult;
pub mod pinned;
pub mod ramp;
pub mod spanner;
pub mod wren;

pub use common::{
    Cluster, Completed, InFlightTx, ProtocolNode, RotResult, SnowDecl, Topology, TxError, Wire,
    WireError, WtxResult,
};
pub use naive::{NaiveFast, NaiveFourPhase, NaiveNode, NaiveThreePhase, NaiveTwoPhase};

/// Every protocol module's [`SnowDecl`], in module order. The `snowlint`
/// static pass and the `snow_decls` runtime tests both treat this as the
/// registry of claimed `(R, V, N, W)` tuples.
pub fn all_snow_decls() -> Vec<&'static SnowDecl> {
    vec![
        &calvin::SNOW_DECL,
        &contrarian::SNOW_DECL,
        &cops::SNOW_DECL,
        &cops_rw::SNOW_DECL,
        &cops_snow::SNOW_DECL,
        &cure::SNOW_DECL,
        &eiger::SNOW_DECL,
        &gentlerain::SNOW_DECL,
        &naive::SNOW_DECL,
        &occult::SNOW_DECL,
        &pinned::SNOW_DECL,
        &ramp::SNOW_DECL,
        &spanner::SNOW_DECL,
        &wren::SNOW_DECL,
    ]
}
