//! GentleRain [Du et al., SoCC 2014]: causal consistency with cheap
//! metadata — a single stable-time scalar — at the price of **blocking**
//! reads.
//!
//! Table 1 row: R = 2, V = 1, blocking, no W, causal consistency.
//!
//! GentleRain is Contrarian's foil: the same two-round stable-snapshot
//! read, but without the client-side write cache. Read-your-writes is
//! instead enforced server-side: the client's snapshot request carries
//! its dependency time, and a server asked to read at a snapshot beyond
//! its current global stable time **parks the request** until
//! stabilization catches up. A client that writes and immediately reads
//! therefore blocks for up to a stabilization period — the N violation
//! the paper's Table 1 records.

use crate::common::{Completed, HybridClock, MvStore, ProtocolNode, Topology, Version};
use cbf_model::{ConsistencyLevel, Key, TxId, Value};
use cbf_sim::{Actor, Ctx, ProcessId, Time, MILLIS};
use std::collections::HashMap;

/// Stabilization broadcast period. Realistic deployments stabilize much
/// less often than a client round trip (100 µs here), which is exactly
/// what makes the blocking reads observable.
pub const STABLE_PERIOD: Time = MILLIS;

/// GentleRain message alphabet.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // fields are self-describing
pub enum Msg {
    /// Injection: read-only transaction.
    InvokeRot { id: TxId, keys: Vec<Key> },
    /// Injection: (single-object) write.
    InvokeWtx { id: TxId, writes: Vec<(Key, Value)> },
    /// Timer: broadcast my stable time.
    StableTick,
    /// Server → server: my local stable time.
    LstBcast { lst: u64 },
    /// Client → any server: current global stable time?
    GstReq { id: TxId },
    /// Server → client: the GST.
    GstResp { id: TxId, gst: u64 },
    /// Client → server: read keys at snapshot `at` (parks if `at` is
    /// beyond this server's GST — the blocking).
    ReadAt { id: TxId, keys: Vec<Key>, at: u64 },
    /// Server → client: one value per key.
    ReadAtResp {
        id: TxId,
        reads: Vec<(Key, Value, u64)>,
    },
    /// Client → server: single-key write.
    PutReq {
        id: TxId,
        key: Key,
        value: Value,
        dep_ts: u64,
    },
    /// Server → client: applied at `ts`.
    PutAck { id: TxId, key: Key, ts: u64 },
}

/// In-flight ROT at the client.
#[derive(Clone, Debug)]
struct PendingRot {
    keys: Vec<Key>,
    got: HashMap<Key, (Value, u64)>,
    awaiting: usize,
    invoked_at: u64,
}

/// A read parked at a server until its GST reaches `at`.
#[derive(Clone, Debug)]
struct ParkedRead {
    client: ProcessId,
    id: TxId,
    keys: Vec<Key>,
    at: u64,
}

/// GentleRain client: no write cache — reads block instead.
#[derive(Clone, Debug)]
pub struct ClientState {
    topo: Topology,
    /// Highest timestamp observed (own writes and reads).
    dep_ts: u64,
    last_snapshot: u64,
    rots: HashMap<TxId, PendingRot>,
    puts: HashMap<TxId, u64>,
    completed: HashMap<TxId, Completed>,
}

/// GentleRain server.
#[derive(Clone, Debug)]
pub struct ServerState {
    topo: Topology,
    store: MvStore,
    clock: HybridClock,
    known_lst: Vec<u64>,
    me: ProcessId,
    /// Stabilization broadcast period (tunable via `Topology::tuning`).
    period: cbf_sim::Time,
    parked: Vec<ParkedRead>,
}

impl ServerState {
    fn gst(&self) -> u64 {
        self.known_lst.iter().copied().min().unwrap_or(0)
    }

    fn refresh_own_lst(&mut self, now: Time) -> u64 {
        let lst = self.clock.tick(now);
        let my = self.me.index();
        self.known_lst[my] = self.known_lst[my].max(lst);
        lst
    }

    fn serve(&self, keys: &[Key], at: u64) -> Vec<(Key, Value, u64)> {
        keys.iter()
            .map(|&k| match self.store.latest_at(k, at) {
                Some(v) => (k, v.value, v.ts),
                None => (k, Value::BOTTOM, 0),
            })
            .collect()
    }

    /// Serve every parked read whose snapshot is now stable.
    fn drain_parked(&mut self, ctx: &mut Ctx<Msg>) {
        let gst = self.gst();
        let (ready, still): (Vec<ParkedRead>, Vec<ParkedRead>) = std::mem::take(&mut self.parked)
            .into_iter()
            .partition(|r| r.at <= gst);
        self.parked = still;
        for r in ready {
            let reads = self.serve(&r.keys, r.at);
            ctx.send(r.client, Msg::ReadAtResp { id: r.id, reads });
        }
    }
}

/// A GentleRain node.
#[derive(Clone, Debug)]
pub enum GentleRainNode {
    /// A client.
    Client(ClientState),
    /// A server.
    Server(ServerState),
}

impl GentleRainNode {
    fn client_step(c: &mut ClientState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::InvokeRot { id, keys } => {
                    let server = c.topo.primary(keys[0]);
                    ctx.send(server, Msg::GstReq { id });
                    c.rots.insert(
                        id,
                        PendingRot {
                            keys,
                            got: HashMap::new(),
                            awaiting: 0,
                            invoked_at: ctx.now(),
                        },
                    );
                }
                Msg::GstResp { id, gst } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    // RYW + monotonic reads without a cache: the snapshot
                    // floor includes the client's own dependency time —
                    // the server will block until it is stable.
                    let at = gst.max(c.dep_ts).max(c.last_snapshot);
                    c.last_snapshot = at;
                    let groups = c.topo.group_by_primary(&p.keys);
                    p.awaiting = groups.len();
                    for (server, ks) in groups {
                        ctx.send(server, Msg::ReadAt { id, keys: ks, at });
                    }
                }
                Msg::ReadAtResp { id, reads } => {
                    let Some(p) = c.rots.get_mut(&id) else {
                        continue;
                    };
                    for (k, v, ts) in reads {
                        c.dep_ts = c.dep_ts.max(ts);
                        p.got.insert(k, (v, ts));
                    }
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        let Some(p) = c.rots.remove(&id) else {
                            continue;
                        };
                        let reads = p
                            .keys
                            .iter()
                            .map(|&k| (k, p.got.get(&k).map_or(Value::BOTTOM, |&(v, _)| v)))
                            .collect();
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads,
                                invoked_at: p.invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                Msg::InvokeWtx { id, writes } => {
                    let (key, value) = writes[0];
                    ctx.send(
                        c.topo.primary(key),
                        Msg::PutReq {
                            id,
                            key,
                            value,
                            dep_ts: c.dep_ts,
                        },
                    );
                    c.puts.insert(id, ctx.now());
                }
                Msg::PutAck { id, ts, .. } => {
                    if let Some(invoked_at) = c.puts.remove(&id) {
                        c.dep_ts = c.dep_ts.max(ts);
                        c.completed.insert(
                            id,
                            Completed {
                                id,
                                reads: Vec::new(),
                                invoked_at,
                                completed_at: ctx.now(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn server_step(s: &mut ServerState, ctx: &mut Ctx<Msg>) {
        for env in ctx.recv() {
            match env.msg {
                Msg::StableTick => {
                    let lst = s.refresh_own_lst(ctx.now());
                    for srv in s.topo.servers() {
                        if srv != s.me {
                            ctx.send(srv, Msg::LstBcast { lst });
                        }
                    }
                    ctx.set_timer(s.period, Msg::StableTick);
                    s.drain_parked(ctx);
                }
                Msg::LstBcast { lst } => {
                    let idx = env.from.index();
                    s.known_lst[idx] = s.known_lst[idx].max(lst);
                    s.drain_parked(ctx);
                }
                Msg::GstReq { id } => {
                    s.refresh_own_lst(ctx.now());
                    ctx.send(env.from, Msg::GstResp { id, gst: s.gst() });
                }
                Msg::ReadAt { id, keys, at } => {
                    s.refresh_own_lst(ctx.now());
                    if at <= s.gst() {
                        let reads = s.serve(&keys, at);
                        ctx.send(env.from, Msg::ReadAtResp { id, reads });
                    } else {
                        // The snapshot is ahead of stabilization: park —
                        // GentleRain's blocking.
                        s.parked.push(ParkedRead {
                            client: env.from,
                            id,
                            keys,
                            at,
                        });
                    }
                }
                Msg::PutReq {
                    id,
                    key,
                    value,
                    dep_ts,
                } => {
                    s.clock.witness(dep_ts);
                    let ts = s.clock.tick(ctx.now());
                    s.store.insert(key, Version { value, ts, tx: id });
                    ctx.send(env.from, Msg::PutAck { id, key, ts });
                }
                _ => {}
            }
        }
    }
}

impl Actor for GentleRainNode {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        if let GentleRainNode::Server(s) = self {
            ctx.set_timer(s.period, Msg::StableTick);
        }
    }

    fn step(&mut self, ctx: &mut Ctx<Msg>) {
        match self {
            GentleRainNode::Client(c) => Self::client_step(c, ctx),
            GentleRainNode::Server(s) => Self::server_step(s, ctx),
        }
    }
}

impl ProtocolNode for GentleRainNode {
    const NAME: &'static str = "GentleRain";
    const CONSISTENCY: ConsistencyLevel = ConsistencyLevel::Causal;
    const SUPPORTS_MULTI_WRITE: bool = false;

    fn server(topo: &Topology, id: ProcessId) -> Self {
        GentleRainNode::Server(ServerState {
            topo: topo.clone(),
            store: MvStore::new(),
            clock: HybridClock::new(id.0 as u8),
            known_lst: vec![0; topo.num_servers as usize],
            me: id,
            period: if topo.tuning > 0 {
                topo.tuning
            } else {
                STABLE_PERIOD
            },
            parked: Vec::new(),
        })
    }

    fn client(topo: &Topology, _id: ProcessId) -> Self {
        GentleRainNode::Client(ClientState {
            topo: topo.clone(),
            dep_ts: 0,
            last_snapshot: 0,
            rots: HashMap::new(),
            puts: HashMap::new(),
            completed: HashMap::new(),
        })
    }

    fn rot_invoke(id: TxId, keys: Vec<Key>) -> Msg {
        Msg::InvokeRot { id, keys }
    }

    fn wtx_invoke(id: TxId, writes: Vec<(Key, Value)>) -> Msg {
        Msg::InvokeWtx { id, writes }
    }

    fn completed(&self, id: TxId) -> Option<&Completed> {
        match self {
            GentleRainNode::Client(c) => c.completed.get(&id),
            GentleRainNode::Server(_) => None,
        }
    }

    fn take_completed(&mut self, id: TxId) -> Option<Completed> {
        match self {
            GentleRainNode::Client(c) => c.completed.remove(&id),
            GentleRainNode::Server(_) => None,
        }
    }

    fn msg_values(msg: &Msg) -> u32 {
        match msg {
            Msg::ReadAtResp { reads, .. } => crate::common::max_values_per_object(
                reads
                    .iter()
                    .filter(|(_, v, _)| !v.is_bottom())
                    .map(|&(k, _, _)| k),
            ),
            _ => 0,
        }
    }

    fn msg_is_request(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::GstReq { .. } | Msg::ReadAt { .. } | Msg::PutReq { .. }
        )
    }
}

crate::snow_properties! {
    system: "GentleRain",
    consistency: Causal,
    rounds: 2,
    values: 1,
    nonblocking: false,
    write_tx: false,
    requests: [GstReq, ReadAt, PutReq],
    value_replies: [ReadAtResp],
    paper_row: "GentleRain",
    escape_hatch: none,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Cluster;
    use cbf_model::{check_read_your_writes, ClientId};

    fn minimal() -> Cluster<GentleRainNode> {
        Cluster::new(Topology::minimal(4))
    }

    fn stabilize(c: &mut Cluster<GentleRainNode>) {
        c.world.run_for(5 * STABLE_PERIOD);
    }

    #[test]
    fn stable_reads_are_two_round_one_value() {
        let mut c = minimal();
        c.write_tx_auto(ClientId(0), &[Key(0)]).unwrap();
        c.write_tx_auto(ClientId(0), &[Key(1)]).unwrap();
        stabilize(&mut c);
        let r = c.read_tx(ClientId(1), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.audit.rounds, 2);
        assert!(r.audit.max_values_per_msg <= 1);
        assert!(c.check().is_ok());
    }

    #[test]
    fn write_then_read_blocks_until_stabilization() {
        // The signature GentleRain behaviour: read-your-writes is served
        // by parking the read until the GST passes the client's write.
        let mut c = minimal();
        let w = c.write_tx_auto(ClientId(2), &[Key(0)]).unwrap();
        let r = c.read_tx(ClientId(2), &[Key(0), Key(1)]).unwrap();
        assert_eq!(r.reads[0].1, w.writes[0].1, "RYW must hold");
        assert!(r.audit.blocked, "audit: {:?}", r.audit);
        // The blocked read waited for a stabilization round: well above
        // the 200 µs two-round floor.
        assert!(
            r.audit.latency > 400 * cbf_sim::MICROS,
            "latency {}",
            r.audit.latency
        );
        assert!(check_read_your_writes(c.history()).is_empty());
    }

    #[test]
    fn profile_records_the_blocking() {
        let mut c = minimal();
        for i in 0..6u32 {
            c.write_tx_auto(ClientId(i % 4), &[Key(i % 2)]).unwrap();
            c.read_tx(ClientId(i % 4), &[Key(0), Key(1)]).unwrap();
        }
        let p = c.profile();
        assert!(p.any_blocking, "profile: {p:?}");
        assert!(!p.multi_write_supported);
        assert!(c.check().is_ok());
    }

    #[test]
    fn chaotic_schedules_stay_causal() {
        for seed in 0..5u64 {
            let mut c = minimal();
            for i in 0..10u32 {
                let cl = ClientId(i % 4);
                if i % 3 == 0 {
                    c.write_tx_auto(cl, &[Key(i % 2)]).unwrap();
                } else {
                    c.read_tx(cl, &[Key(0), Key(1)]).unwrap();
                }
                if i % 4 == 0 {
                    c.world.run_for(STABLE_PERIOD);
                }
            }
            assert!(c.check().is_ok(), "seed {seed}: {:?}", c.check().violations);
        }
    }
}
