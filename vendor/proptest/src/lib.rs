//! Offline vendored subset of the `proptest` crate API.
//!
//! The workspace's property tests are written against the upstream
//! `proptest` surface (`proptest!`, `Strategy`, `prop::collection::vec`,
//! `prop_oneof!`, …). This crate provides that surface without network
//! access, with two deliberate simplifications:
//!
//! * the runner is **deterministic** — every test derives its case RNG
//!   from a fixed seed plus the case index, so failures reproduce
//!   exactly across runs and machines;
//! * there is **no shrinking** — a failing case reports the generated
//!   input verbatim.
//!
//! Both fit this repository's rules: bit-identical reruns beat minimal
//! counterexamples for a determinism-obsessed artifact.

pub mod strategy {
    /// The internal generator handed to strategies.
    ///
    /// xoshiro256++ seeded via SplitMix64 (same construction as the
    /// workspace's vendored `rand`, duplicated here so the two crates
    /// stay independent).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A value generator. Mirrors `proptest::strategy::Strategy` minus
    /// shrinking: `generate` replaces `new_tree`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase, for heterogeneous unions (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy (upstream's `BoxedStrategy`).
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted-equal union of same-value-type strategies.
    pub struct Union<T> {
        pub variants: Vec<BoxedStrategy<T>>,
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.variants.len() as u64) as usize;
            self.variants[idx].generate(rng)
        }
    }

    /// Integer / float ranges act directly as strategies.
    pub trait RangeValue: Copy + std::fmt::Debug {
        fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                #[inline]
                fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                    let x = rng.next_u64() as u128;
                    lo.wrapping_add(((x * span) >> 64) as $t)
                }
            }
        )*};
    }

    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RangeValue for f64 {
        #[inline]
        fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            assert!(lo < hi, "empty strategy range");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    impl<T: RangeValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, self.start, self.end)
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `any::<T>()` — the full range of a primitive.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Primitives with a canonical full-range strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Construct the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::{Strategy, TestRng};

    /// `[T; 3]` of independent draws from `element`.
    pub struct Uniform3<S>(S);

    /// Mirror of `proptest::array::uniform3`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};

    /// `Option` of values from `inner`: `None` one time in four, like
    /// upstream's default weighting.
    pub struct OptionStrategy<S>(S);

    /// Mirror of `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    use crate::strategy::{Strategy, TestRng};

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion inside the case body failed.
        Fail(String),
        /// The case asked to be discarded (unused here, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-test configuration (case count only).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic case driver: fixed base seed, one sub-stream per
    /// case index, no shrinking.
    pub struct TestRunner {
        config: Config,
        /// Mixed into every case seed; overridable for derived runners.
        base_seed: u64,
    }

    // Spells "seed, CBF, 2019" — grouped by meaning, not by nibble count.
    #[allow(clippy::unusual_byte_groupings)]
    const BASE_SEED: u64 = 0x5EED_CBF_2019;

    impl TestRunner {
        /// Build a runner for `config`.
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                base_seed: BASE_SEED,
            }
        }

        /// Run `test` against `config.cases` generated inputs; panic on
        /// the first failure, reporting the input and the case seed.
        pub fn run<S: Strategy, F>(&mut self, strategy: &S, test: F)
        where
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let seed = self
                    .base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(case as u64);
                let mut rng = TestRng::seed_from_u64(seed);
                let input = strategy.generate(&mut rng);
                let rendered = format!("{input:?}");
                match test(input) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest case {case} (seed {seed:#x}) failed: {msg}\n\
                         input: {rendered}"
                    ),
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a proptest case; failure aborts the case with a
/// [`test_runner::TestCaseError`] rather than panicking mid-generate.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Equal-weight union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            variants: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

/// The test-definition macro. Supports the upstream forms used in this
/// workspace: an optional `#![proptest_config(...)]` header and any
/// number of `fn name(pat in strategy, ...) { body }` items carrying
/// their own attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(&($($strat,)+), |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u32),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_just_compose(p in prop_oneof![
            (0u32..10).prop_map(Pick::A),
            Just(Pick::B),
        ]) {
            match p {
                Pick::A(n) => prop_assert!(n < 10),
                Pick::B => {}
            }
        }

        #[test]
        fn arrays_and_options(a in prop::array::uniform3(prop::option::of(0u8..8))) {
            for v in a.into_iter().flatten() {
                prop_assert!(v < 8);
            }
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::{Strategy, TestRng};
        let s = crate::collection::vec(0u32..100, 1..10);
        let mut r1 = TestRng::seed_from_u64(1);
        let mut r2 = TestRng::seed_from_u64(1);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
