//! Offline vendored subset of the `criterion` crate API.
//!
//! Enough of criterion's surface for this workspace's benches to compile
//! and produce useful numbers with no crates.io access: groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is
//! simple wall-clock sampling — median and min/max over `sample_size`
//! samples, printed one line per benchmark — with no plots, no state
//! files, and no statistical regression machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (used inside a named group).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so string literals work directly.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few unrecorded runs so cold caches don't skew the
        // first sample.
        for _ in 0..2 {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<40} median {:>12}   [min {:>12}, max {:>12}, n={}]",
        format_duration(median),
        format_duration(min),
        format_duration(max),
        samples.len()
    );
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// How many recorded samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&id.id, &mut b.samples);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `id`.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &mut b.samples);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I, IB, F>(&mut self, id: IB, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        IB: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &mut b.samples);
        self
    }

    /// End the group (upstream flushes reports here; ours are eager).
    pub fn finish(self) {}
}

/// Define a benchmark group function, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("fork", 1000).id, "fork/1000");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn bench_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 2 warm-up + 3 recorded.
        assert_eq!(runs, 5);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("sum");
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::from_parameter(data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        g.finish();
    }
}
