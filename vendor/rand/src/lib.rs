//! Offline vendored subset of the `rand` crate API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! small slice of `rand` it actually uses — a seedable `StdRng` plus
//! `gen`, `gen_range` and `gen_bool` — is provided here as a path
//! dependency. The generator is xoshiro256++ seeded through SplitMix64:
//! deterministic, `Clone`, and statistically solid for the simulator's
//! latency sampling and workload generation. It is **not** the upstream
//! ChaCha-based `StdRng` and produces a different stream for the same
//! seed; seed-pinned tests in the workspace are calibrated against this
//! stream.

/// Types that can be sampled uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Multiply-shift reduction over a 64-bit draw: unbiased
                // enough for simulation workloads, and branch-free.
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = rng.next_f64();
        lo + (hi - lo) * u
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * (rng.next_f64() as f32)
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl SampleStandard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The raw 64-bit source every adapter builds on.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing sampling adapters, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the half-open range `lo..hi`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draw from the standard distribution of `T`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(99);
        let n = 100_000;
        let below = (0..n).filter(|_| r.gen::<f64>() < 0.5).count();
        let frac = below as f64 / n as f64;
        assert!((0.48..0.52).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.28..0.32).contains(&frac), "frac = {frac}");
    }
}
